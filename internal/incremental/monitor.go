// Package incremental maintains the violation set of a CFD set under
// tuple-level changes — the serving-path counterpart of the batch detectors
// in internal/detect.
//
// A Monitor is loaded once with an instance I and a CFD set Σ; it builds
// persistent per-pattern-bucket hash indexes (the constant-mask bucketing of
// detect/direct.go, turned inside out: the static tableau is indexed and
// probed per tuple) and thereafter answers Insert, Delete and Update in time
// proportional to the tuples and groups actually affected, instead of
// rescanning I. Every operation returns the exact delta it caused — the
// violations that appeared and the violations that were retired — while the
// live violation set stays queryable at any time.
//
// Every mutation flows through one batched path: Apply takes a ChangeSet
// (an ordered vector of insert/delete/update ops), and the single-op
// Insert, Delete and Update are one-element wrappers over it. A batch is
// bucketed by tuple shard and each affected shard is visited once, under
// a single lock acquisition, with disjoint shards applied in parallel.
//
// State is stored as dense value-ID columns: every distinct value is
// interned once (relation.Interner) and handed a uint32 ID, tuples are
// []uint32 vectors, tableau constants are pre-resolved to IDs at build
// time, and group keys are the packed 4-byte-per-ID encoding — so the
// hot path compares and hashes integers, and a million-tuple store costs
// 4 bytes per cell instead of a 16-byte string header (E13 measures
// both). Strings reappear only at API boundaries (Get, Violations,
// deltas), materialized through the interner.
//
// Internally every index is sharded by hash with per-shard read/write
// locks. A mutation holds its tuple-shard lock for the whole operation (so
// two writers hitting the same key serialize as whole operations) and
// acquires index shard locks one at a time underneath it; concurrent
// readers (Violations, Satisfied, Len) never wait longer than one shard,
// and operations on different tuple shards proceed in parallel. A
// memory-only batch write-locks its affected shards in ascending order
// (keeping the lock graph acyclic) for the whole batch, so batches are
// atomic against concurrent writers.
//
// Durable mode adds one invariant on top: journal.mu serializes batches
// so that WAL log order equals apply order — that equality is what makes
// log replay rebuild the exact pre-crash state. The critical section is
// no wider than the invariant requires: validation and the single
// record append (one fsync per batch) run strictly ordered under
// journal.mu, and the in-memory apply then fans out shard-parallel while
// still inside it; per-key ordering survives because one key's ops land
// in one shard bucket, applied in vector order. The randomized property
// tests replay long mixed update streams — single ops and batches — and
// cross-check the live set against a fresh detect.Direct run after every
// step.
//
// Options.GroupCommit stacks batch economics onto unbatched traffic:
// concurrent single-op writers are coalesced into one WAL record and one
// fsync per commit window by a leader-based protocol (see groupcommit.go)
// — each writer still gets its own validation outcome and its own delta,
// and shares the leader's fsync for durability.
//
// With Options.Durable set, the monitor becomes a persistent node: every
// mutation is appended to a write-ahead change log (internal/wal) before
// the in-memory apply, snapshots of the full state bound both the log
// length and the recovery time, and a restart rebuilds the live violation
// set from the latest snapshot plus the log tail instead of re-parsing
// and re-indexing the source data. See journal.go and persist.go; the
// kill-and-recover property test in crash_test.go truncates the log at
// arbitrary byte offsets and cross-checks the recovered state against the
// batch detector.
package incremental

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/relation"
)

// Options configures a Monitor.
type Options struct {
	// Shards is the number of lock shards per index; 0 means the default
	// (16). More shards reduce contention under concurrent writers at the
	// cost of a little memory.
	Shards int

	// Durable, when non-empty, is a directory the monitor journals to: a
	// write-ahead change log records every mutation before it is applied,
	// and snapshots of the full state (tuples, group indexes, live
	// violation set) bound recovery time. If the directory already holds
	// state, New and Load recover from it — latest snapshot plus log-tail
	// replay — instead of starting from the given seed.
	Durable string

	// Fsync, in durable mode, fsyncs the log after every record: an
	// acknowledged mutation then survives OS crash and power loss, at the
	// cost of one disk sync per write. Without it records are buffered and
	// reach the OS on snapshot, Close, or when the buffer fills — a crash
	// can lose the unflushed tail, never the acknowledged prefix on disk.
	Fsync bool

	// GroupCommit, in durable mode, coalesces concurrent writers into
	// shared commit windows: one WAL record and one fsync per window
	// instead of per ChangeSet. The zero value disables it; see the
	// GroupCommit type for the window knobs. Ignored without Durable —
	// a memory-only monitor has no fsync to amortize.
	GroupCommit GroupCommit

	// SnapshotEvery, in durable mode, rolls a background snapshot after
	// this many journaled records, truncating the log. 0 disables
	// automatic snapshots (use ForceSnapshot).
	SnapshotEvery int

	// RetainSegments, in durable mode, keeps this many closed log
	// segments behind the current generation when a snapshot rolls,
	// instead of garbage-collecting everything below it. A primary that
	// ships its WAL (see Follower) needs retention: a follower whose
	// cursor sits in a closed segment resumes from it directly, while a
	// cursor below the retained window pays a full snapshot resync.
	// Old snapshots are still collected at every roll — recovery and
	// resync only ever read the newest one. 0 retains nothing (the
	// single-node default).
	RetainSegments int

	// Intern, when non-nil, is a shared value pool the monitor adopts
	// instead of a private one — pass the pool a CSV load deduplicated
	// through (relation.ReadCSVInterned) and the seed batch's values hit
	// the pool instead of being cloned into a second one. The monitor
	// stores tuples as dense value IDs handed out by this pool, so every
	// column's distinct values are interned — including free-text ones.
	// The pool only grows: a column of unbounded unique values (UUIDs,
	// timestamps) keeps each distinct value pooled for the monitor's
	// lifetime, the price of the 4-byte ID cells.
	Intern *relation.Interner

	// Metrics is the observability registry the monitor instruments
	// itself into (apply-stage timers, WAL timings, violation counters;
	// see internal/obs). nil means a private registry per monitor, so
	// tests stay hermetic; a daemon passes obs.Default() so one scrape
	// covers every component; obs.Disabled() turns instrumentation off.
	Metrics *obs.Registry
}

const defaultShards = 16

// cfdState is the per-CFD live state: the static tableau index plus the
// sharded group and constant-violation stores.
type cfdState struct {
	cfd        *core.CFD
	xIdx, yIdx []int
	rows       *rowIndex
	// yPat is the tableau's Y side resolved to value-ID patterns, one
	// vector per row — constViolates compares integers, never strings.
	yPat   [][]yCell
	groups []groupShard
	consts []constShard
	// violations counts this CFD's live violations (constant-violating
	// tuples plus violating groups); maintained under the shard locks,
	// read lock-free by Satisfied.
	violations atomic.Int64
}

// Monitor is a stateful incremental violation monitor for one relation
// instance and one CFD set. All methods are safe for concurrent use.
type Monitor struct {
	schema *relation.Schema
	sigma  []*core.CFD
	shards int

	nextKey atomic.Int64
	size    atomic.Int64
	tuples  []tupleShard

	cfds []*cfdState
	// attrCFDs maps an attribute position to the indexes of the CFDs
	// whose X ∪ Y mentions it — the only CFDs an Update of that attribute
	// can affect.
	attrCFDs [][]int

	// vals is the value pool: every stored cell is a dense uint32 ID into
	// it, and tableau constants are resolved through it at build time.
	// keys interns packed Y-projection keys, so the ykKey struct probe on
	// the hot path reuses one canonical string per distinct projection
	// instead of allocating it per mutation.
	vals, keys *relation.Interner

	// statsState anchors the group-statistics subscriptions (TrackGroups;
	// see stats.go) — the generalized, tableau-free form of the group
	// indexes, maintained from the same apply path.
	statsState

	// met holds the pre-registered metric handles; nil when built with
	// obs.Disabled(), which every timing site checks before touching
	// the clock.
	met *monMetrics

	// j is the durable journal; nil for a memory-only monitor.
	j *journal

	// gc is the group-commit window (nil when disabled); Apply routes
	// journaled ChangeSets through it so concurrent writers share one
	// WAL record and fsync. See groupcommit.go.
	gc *committer

	// readOnly gates the public mutation surface while the monitor
	// follows a primary's WAL stream (see follower.go): Apply and
	// ForceSnapshot refuse with ErrReadOnly, and only the replication
	// apply path — which carries the primary's already-journaled records
	// — may change state. Promotion clears it at a record boundary.
	readOnly atomic.Bool

	// view is the maintained violation view: fold maps updated in O(Δ)
	// from every applied delta, published as an immutable atomically-
	// swapped snapshot. See view.go.
	view viewState

	// epoch is the fencing term this monitor's history is written under:
	// bumped (and journaled) by promotion, restored from the snapshot
	// and epoch records on recovery. fencedAt is the highest epoch the
	// monitor has LEARNED of; when it exceeds epoch the monitor knows it
	// was deposed and refuses mutations with ErrFenced. See fence.go.
	epoch    atomic.Uint64
	fencedAt atomic.Uint64
}

// ReadOnly reports whether the monitor currently refuses mutations
// because it is following a primary (see Follower; promotion clears it).
func (m *Monitor) ReadOnly() bool { return m.readOnly.Load() }

// New builds an empty Monitor for the schema and Σ. Every CFD is validated
// against the schema up front. With Options.Durable set, a directory that
// already holds journaled state is recovered instead.
func New(schema *relation.Schema, sigma []*core.CFD, opts Options) (*Monitor, error) {
	m, err := build(schema, sigma, opts)
	if err != nil {
		return nil, err
	}
	if opts.Durable != "" {
		if err := attachJournal(m, opts, nil); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// build constructs the in-memory monitor without any journal wiring.
func build(schema *relation.Schema, sigma []*core.CFD, opts Options) (*Monitor, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = defaultShards
	}
	vals := opts.Intern
	if vals == nil {
		vals = relation.NewInterner()
	}
	m := &Monitor{
		schema:   schema,
		sigma:    sigma,
		shards:   shards,
		tuples:   make([]tupleShard, shards),
		attrCFDs: make([][]int, schema.Len()),
		vals:     vals,
		keys:     relation.NewInterner(),
	}
	for i := range m.tuples {
		m.tuples[i].m = make(map[int64]idTuple)
	}
	for i, c := range sigma {
		if err := c.Validate(schema); err != nil {
			return nil, fmt.Errorf("incremental: CFD %d: %w", i, err)
		}
		xIdx, err := schema.Indexes(c.LHS)
		if err != nil {
			return nil, err
		}
		yIdx, err := schema.Indexes(c.RHS)
		if err != nil {
			return nil, err
		}
		cs := &cfdState{
			cfd:    c,
			xIdx:   xIdx,
			yIdx:   yIdx,
			rows:   buildRowIndex(c, vals),
			yPat:   buildYPatterns(c, vals),
			groups: make([]groupShard, shards),
			consts: make([]constShard, shards),
		}
		for s := range cs.groups {
			cs.groups[s].m = make(map[string]*group)
			cs.groups[s].yCounts = make(map[ykKey]int)
			cs.consts[s].m = make(map[int64]bool)
		}
		m.cfds = append(m.cfds, cs)
		for _, a := range c.Attrs() {
			ai := schema.MustIndex(a)
			m.attrCFDs[ai] = append(m.attrCFDs[ai], i)
		}
	}
	m.view.init(len(sigma))
	if opts.GroupCommit.enabled() {
		m.gc = newCommitter(opts.GroupCommit)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if !reg.IsDisabled() {
		m.met = newMonMetrics(reg)
		// Live-state gauges read the monitor at scrape time. Re-binding
		// a new monitor to a shared registry points them at the new
		// instance (GaugeFunc: latest registration wins).
		reg.GaugeFunc("cfd_tuples", "Live tuples in the monitor.", func() float64 { return float64(m.size.Load()) })
		reg.GaugeFunc("cfd_violations", "Live violations across the CFD set.", func() float64 { return float64(m.ViolationCount()) })
		reg.GaugeFunc("cfd_epoch", "Fencing epoch this node's history is written under.", func() float64 { return float64(m.epoch.Load()) })
		reg.GaugeFunc("cfd_violations_view_version", "Version of the maintained violation view; advances only when the violation set changes.", func() float64 { return float64(m.view.version.Load()) })
		reg.GaugeFunc("cfd_violations_view_age_seconds", "Seconds since the published violation view was materialized; -1 before the first build.", func() float64 {
			v := m.view.cur.Load()
			if v == nil {
				return -1
			}
			return time.Since(v.built).Seconds()
		})
	}
	return m, nil
}

// Load builds a Monitor over an existing instance: tuples are keyed
// 0..Len()-1 in row order, so keys coincide with the batch detectors' row
// ids for the initial load. With Options.Durable set, a directory that
// already holds journaled state wins over rel — the snapshot and log tail
// are recovered and the instance is ignored; a fresh directory is seeded
// from rel and immediately snapshotted so later boots skip the CSV path
// entirely.
func Load(rel *relation.Relation, sigma []*core.CFD, opts Options) (*Monitor, error) {
	m, err := build(rel.Schema, sigma, opts)
	if err != nil {
		return nil, err
	}
	if opts.Durable != "" {
		if err := attachJournal(m, opts, rel); err != nil {
			return nil, err
		}
		return m, nil
	}
	if err := m.seed(rel); err != nil {
		return nil, err
	}
	return m, nil
}

// seed loads every tuple of rel as one ChangeSet — a single shard pass
// with parallel workers, keyed 0..Len()-1 in row order. Used by both the
// memory-only Load and the first boot of a durable directory (before the
// journal is attached, so nothing is journaled).
func (m *Monitor) seed(rel *relation.Relation) error {
	ops := make([]Op, len(rel.Tuples))
	for i, t := range rel.Tuples {
		ops[i] = Op{Kind: OpInsert, Tuple: t}
	}
	// Apply validates each row; opErr already carries the row index.
	if _, err := m.Apply(&ChangeSet{Ops: ops}); err != nil {
		return fmt.Errorf("incremental: loading instance: %w", err)
	}
	return nil
}

// Schema returns the monitored schema.
func (m *Monitor) Schema() *relation.Schema { return m.schema }

// Sigma returns the monitored CFD set.
func (m *Monitor) Sigma() []*core.CFD { return m.sigma }

// Len returns the number of live tuples.
func (m *Monitor) Len() int { return int(m.size.Load()) }

// NextKey returns the key the next unkeyed insert would be assigned —
// every live key is strictly below it. A router that partitions the key
// space across monitors seeds its own allocator from the maximum
// NextKey of its shards (see internal/cluster).
func (m *Monitor) NextKey() int64 { return m.nextKey.Load() }

// checkTuple validates arity and domains, mirroring relation.Insert.
func (m *Monitor) checkTuple(t relation.Tuple) error {
	if len(t) != m.schema.Len() {
		return fmt.Errorf("incremental: %q expects %d values, got %d", m.schema.Name, m.schema.Len(), len(t))
	}
	for i, a := range m.schema.Attrs {
		if !a.Domain.Contains(t[i]) {
			return fmt.Errorf("incremental: %q.%s: value %q outside domain %s", m.schema.Name, a.Name, t[i], a.Domain.Name)
		}
	}
	return nil
}

// Insert adds a tuple, returning its stable key and the violation delta.
// It is a one-element ChangeSet over the batched Apply path.
//
// Every mutation holds its tuple-shard lock across both the store write
// and the index maintenance, so two operations on the same key (same
// shard) serialize as whole operations — interleaving their remove/add
// index passes would corrupt the group multisets. Index shard locks are
// only ever acquired while holding a tuple-shard lock, never the reverse,
// and a batch acquires its tuple-shard locks in ascending shard order,
// so the ordering is acyclic.
func (m *Monitor) Insert(t relation.Tuple) (int64, *Delta, error) {
	cs := ChangeSet{Ops: []Op{{Kind: OpInsert, Tuple: t}}}
	d, err := m.Apply(&cs)
	if err != nil {
		return 0, nil, err
	}
	return cs.Ops[0].Key, d, nil
}

// Delete removes the tuple with the given key, returning the violation
// delta (always a pure retirement or group-status change).
func (m *Monitor) Delete(key int64) (*Delta, error) {
	return m.Apply(&ChangeSet{Ops: []Op{{Kind: OpDelete, Key: key}}})
}

// Update changes one attribute of the tuple with the given key. Only the
// CFDs mentioning the attribute are re-evaluated; the delta is the net
// change (a violation present both before and after is not reported).
// A same-value update is a journal-free no-op.
func (m *Monitor) Update(key int64, attr string, val relation.Value) (*Delta, error) {
	ai, ok := m.schema.Index(attr)
	if !ok {
		return nil, fmt.Errorf("incremental: schema %q has no attribute %q", m.schema.Name, attr)
	}
	if !m.schema.Attrs[ai].Domain.Contains(val) {
		return nil, fmt.Errorf("incremental: %q.%s: value %q outside domain %s", m.schema.Name, attr, val, m.schema.Attrs[ai].Domain.Name)
	}
	// Same-value pre-check so no-ops are not journaled. The value can
	// change between this read and the apply, but a racing writer makes
	// either order a valid linearization; updateLocked re-checks under
	// the shard lock, so a record journaled for a lost race replays as a
	// no-op, never as a wrong value.
	sh := &m.tuples[shardOfTuple(key, m.shards)]
	sh.mu.RLock()
	old, ok := sh.m[key]
	same := ok && m.vals.ByID(old[ai]) == val
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("incremental: no tuple with key %d", key)
	}
	if same {
		return &Delta{}, nil
	}
	return m.Apply(&ChangeSet{Ops: []Op{{Kind: OpUpdate, Key: key, Attr: attr, Value: val}}})
}

// insertLocked stores an already-validated tuple (as its ID vector,
// resolved by internOps) under key and folds it into every CFD's live
// state. The caller holds sh's write lock and owns key uniqueness (fresh
// from nextKey, or a replayed record).
func (m *Monitor) insertLocked(sh *tupleShard, key int64, ids idTuple, d *Delta, sc *opScratch) {
	sh.m[key] = ids
	m.size.Add(1)
	for ci := range m.cfds {
		m.add(ci, key, ids, d, sc)
	}
	for _, h := range m.statsHooks() {
		h.add(ids)
	}
}

// deleteLocked removes the tuple and unfolds it from every CFD's state;
// the caller holds sh's write lock.
func (m *Monitor) deleteLocked(sh *tupleShard, key int64, d *Delta, sc *opScratch) error {
	t, ok := sh.m[key]
	if !ok {
		return fmt.Errorf("incremental: no tuple with key %d", key)
	}
	delete(sh.m, key)
	m.size.Add(-1)
	for ci := range m.cfds {
		m.remove(ci, key, t, d, sc)
	}
	for _, h := range m.statsHooks() {
		h.remove(t)
	}
	return nil
}

// updateLocked changes one already-validated attribute (vid is the new
// value's ID, resolved by internOps) in place; the caller holds sh's
// write lock. A same-value update applies as a no-op.
func (m *Monitor) updateLocked(sh *tupleShard, key int64, ai int, vid uint32, d *Delta, sc *opScratch) error {
	old, ok := sh.m[key]
	if !ok {
		return fmt.Errorf("incremental: no tuple with key %d", key)
	}
	if old[ai] == vid {
		return nil
	}
	next := append(idTuple(nil), old...)
	next[ai] = vid
	sh.m[key] = next
	for _, ci := range m.attrCFDs[ai] {
		m.remove(ci, key, old, d, sc)
		m.add(ci, key, next, d, sc)
	}
	for _, h := range m.statsHooks() {
		h.update(old, next, ai)
	}
	return nil
}

// Get returns a copy of the tuple with the given key, materialized from
// its ID columns.
func (m *Monitor) Get(key int64) (relation.Tuple, bool) {
	sh := &m.tuples[shardOfTuple(key, m.shards)]
	sh.mu.RLock()
	t, ok := sh.m[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return m.vals.Materialize(make(relation.Tuple, 0, len(t)), t), true
}

// Keys returns the live tuple keys in ascending order.
func (m *Monitor) Keys() []int64 {
	out := make([]int64, 0, m.Len())
	for si := range m.tuples {
		sh := &m.tuples[si]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot materializes the live tuples as a relation, in key order. The
// returned relation is independent of the Monitor.
func (m *Monitor) Snapshot() *relation.Relation {
	rel := relation.New(m.schema)
	for _, k := range m.Keys() {
		if t, ok := m.Get(k); ok {
			rel.Tuples = append(rel.Tuples, t)
		}
	}
	return rel
}

// Satisfied reports whether the live instance currently satisfies Σ. It is
// lock-free: a per-CFD violation counter is maintained under the shard
// locks and read atomically here.
func (m *Monitor) Satisfied() bool {
	for _, cs := range m.cfds {
		if cs.violations.Load() != 0 {
			return false
		}
	}
	return true
}

// ViolationCount returns the total number of live violations across Σ
// without materializing a snapshot.
func (m *Monitor) ViolationCount() int64 {
	var n int64
	for _, cs := range m.cfds {
		n += cs.violations.Load()
	}
	return n
}

// ScanViolations materializes a fresh snapshot of the live violation set
// by walking every shard — the from-scratch baseline Violations' cached
// view is measured against, and the oracle the view property tests
// compare to. Shards are read one at a time, so a concurrent writer is
// never blocked for longer than one shard; under concurrent writes the
// snapshot is a consistent cut per shard, not across the whole set.
// Group keys are materialized to values here — the canonical order of
// the snapshot is value-based, so two monitors with different ID
// assignments canonicalize identically.
func (m *Monitor) ScanViolations() *State {
	st := &State{PerCFD: make([]CFDViolations, len(m.cfds))}
	for ci, cs := range m.cfds {
		if cs.violations.Load() == 0 {
			// Satisfied CFD: skip the shard walk and the const-slice and
			// vars-map allocations outright.
			continue
		}
		var consts []int64
		for si := range cs.consts {
			sh := &cs.consts[si]
			sh.mu.RLock()
			for k := range sh.m {
				consts = append(consts, k)
			}
			sh.mu.RUnlock()
		}
		vars := make(map[string][]relation.Value)
		for si := range cs.groups {
			sh := &cs.groups[si]
			sh.mu.RLock()
			for _, g := range sh.m {
				if g.violating() {
					xs := m.vals.Materialize(make([]relation.Value, 0, len(g.xids)), g.xids)
					vars[relation.EncodeKey(xs)] = xs
				}
			}
			sh.mu.RUnlock()
		}
		st.PerCFD[ci] = canonicalizeState(consts, vars)
	}
	return st
}

// projectIDs appends the IDs of t at the given positions to dst.
func projectIDs(dst []uint32, t idTuple, idx []int) []uint32 {
	for _, j := range idx {
		dst = append(dst, t[j])
	}
	return dst
}

// constViolates reports whether a tuple with Y-projection y has a constant
// violation against any of the matched tableau rows — a pure integer
// comparison against the pre-resolved ID patterns.
func (cs *cfdState) constViolates(rows []int, y []uint32) bool {
	for _, ri := range rows {
		for i, c := range cs.yPat[ri] {
			if c.isConst && y[i] != c.id {
				return true
			}
		}
	}
	return false
}

// internYKey packs the Y-projection held in sc and canonicalizes it
// through the key pool: each distinct projection is packed and interned
// once for the monitor's lifetime, after which the canonical string
// comes back without allocating — which is what keeps the ykKey struct
// probe on the hot path allocation-free.
func (m *Monitor) internYKey(sc *opScratch) relation.Value {
	sc.ykey = relation.AppendIDKey(sc.ykey[:0], sc.y)
	yk, _ := m.keys.InternBytes(sc.ykey)
	return yk
}

// add folds tuple (key, t) into CFD ci's live state, appending any new
// violations to d. sc carries the worker's reusable buffers.
func (m *Monitor) add(ci int, key int64, t idTuple, d *Delta, sc *opScratch) {
	cs := m.cfds[ci]
	sc.x = projectIDs(sc.x[:0], t, cs.xIdx)
	sc.y = projectIDs(sc.y[:0], t, cs.yIdx)
	sc.rows = cs.rows.matchInto(sc.rows[:0], sc.x)
	if cs.constViolates(sc.rows, sc.y) {
		sh := &cs.consts[shardOfTuple(key, m.shards)]
		sh.mu.Lock()
		sh.m[key] = true
		sh.mu.Unlock()
		cs.violations.Add(1)
		d.Added = append(d.Added, Change{CFD: ci, Kind: core.ConstViolation, Tuple: key})
	}
	xh := relation.HashIDs(sc.x)
	sc.key = relation.AppendIDKey(sc.key[:0], sc.x)
	yk := m.internYKey(sc)
	sh := &cs.groups[int(xh%uint32(m.shards))]
	sh.mu.Lock()
	g, ok := sh.m[string(sc.key)]
	if !ok {
		g = &group{xids: append([]uint32(nil), sc.x...), selected: len(sc.rows) > 0}
		sh.m[string(sc.key)] = g
	}
	was := g.violating()
	g.size++
	kk := ykKey{g: g, yk: yk}
	c := sh.yCounts[kk]
	sh.yCounts[kk] = c + 1
	if c == 0 {
		g.distinct++
	}
	now := g.violating()
	sh.mu.Unlock()
	if !was && now {
		cs.violations.Add(1)
		d.Added = append(d.Added, Change{CFD: ci, Kind: core.VariableViolation,
			Key: m.vals.Materialize(make([]relation.Value, 0, len(g.xids)), g.xids)})
	}
}

// remove undoes add for tuple (key, t), appending retired violations to d.
func (m *Monitor) remove(ci int, key int64, t idTuple, d *Delta, sc *opScratch) {
	cs := m.cfds[ci]
	sc.x = projectIDs(sc.x[:0], t, cs.xIdx)
	// The departing tuple is in hand, so its Y-projection is recomputed
	// here instead of being indexed per member.
	sc.y = projectIDs(sc.y[:0], t, cs.yIdx)
	csh := &cs.consts[shardOfTuple(key, m.shards)]
	csh.mu.Lock()
	wasConst := csh.m[key]
	if wasConst {
		delete(csh.m, key)
	}
	csh.mu.Unlock()
	if wasConst {
		cs.violations.Add(-1)
		d.Removed = append(d.Removed, Change{CFD: ci, Kind: core.ConstViolation, Tuple: key})
	}
	xh := relation.HashIDs(sc.x)
	sc.key = relation.AppendIDKey(sc.key[:0], sc.x)
	yk := m.internYKey(sc)
	sh := &cs.groups[int(xh%uint32(m.shards))]
	sh.mu.Lock()
	g, ok := sh.m[string(sc.key)]
	if !ok {
		sh.mu.Unlock()
		return
	}
	was := g.violating()
	g.size--
	kk := ykKey{g: g, yk: yk}
	if c := sh.yCounts[kk]; c <= 1 {
		delete(sh.yCounts, kk)
		g.distinct--
	} else {
		sh.yCounts[kk] = c - 1
	}
	now := g.violating()
	if g.size == 0 {
		delete(sh.m, string(sc.key))
	}
	sh.mu.Unlock()
	if was && !now {
		cs.violations.Add(-1)
		d.Removed = append(d.Removed, Change{CFD: ci, Kind: core.VariableViolation,
			Key: m.vals.Materialize(make([]relation.Value, 0, len(g.xids)), g.xids)})
	}
}
