package incremental_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// custFixture returns the paper's Figure 1 instance and Figure 2 CFDs.
func custFixture(t testing.TB) (*relation.Relation, []*core.CFD) {
	t.Helper()
	schema := relation.MustSchema("cust",
		relation.Attr("CC"), relation.Attr("AC"), relation.Attr("PN"),
		relation.Attr("NM"), relation.Attr("STR"), relation.Attr("CT"), relation.Attr("ZIP"))
	rel := relation.New(schema)
	for _, tp := range [][]string{
		{"01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974"},
		{"01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"},
		{"01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"},
		{"01", "212", "2222222", "Jim", "Elm Str.", "NYC", "02404"},
		{"01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394"},
		{"44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"},
	} {
		rel.MustInsert(tp...)
	}
	sigma, err := core.ParseSet(`
[CC=44, ZIP] -> [STR]
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
[CC, AC] -> [CT]
[CC=01, AC=215] -> [CT=PHI]
[CC=44, AC=141] -> [CT=GLA]
`)
	if err != nil {
		t.Fatal(err)
	}
	return rel, sigma
}

// oracleState runs the batch Direct detector over rel and maps its row-id
// results onto the given monitor keys (keys[row] is row's key).
func oracleState(t testing.TB, rel *relation.Relation, sigma []*core.CFD, keys []int64) *incremental.State {
	t.Helper()
	res, err := detect.Detect(rel, sigma, detect.Options{Strategy: detect.Direct})
	if err != nil {
		t.Fatal(err)
	}
	st := &incremental.State{PerCFD: make([]incremental.CFDViolations, len(res.PerCFD))}
	for i, v := range res.PerCFD {
		var cv incremental.CFDViolations
		for _, row := range v.ConstTuples {
			cv.ConstTuples = append(cv.ConstTuples, keys[row])
		}
		for _, k := range v.VariableKeys {
			cv.VariableKeys = append(cv.VariableKeys, append([]relation.Value(nil), k...))
		}
		st.PerCFD[i] = cv
	}
	return st
}

func identityKeys(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func describe(st *incremental.State) string {
	s := ""
	for i, v := range st.PerCFD {
		s += fmt.Sprintf("cfd %d: const=%v vars=%v\n", i, v.ConstTuples, v.VariableKeys)
	}
	return s
}

// TestLoadMatchesBatchDetector: after Load, the live violation set equals a
// fresh batch run (keys coincide with row ids on the initial load).
func TestLoadMatchesBatchDetector(t *testing.T) {
	rel, sigma := custFixture(t)
	m, err := incremental.Load(rel, sigma, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := oracleState(t, rel, sigma, identityKeys(rel.Len()))
	got := m.Violations()
	if !got.Equal(want) {
		t.Fatalf("monitor disagrees with batch detector after Load:\ngot:\n%s\nwant:\n%s", describe(got), describe(want))
	}
	if m.Satisfied() {
		t.Fatal("Figure 1 instance should violate Σ")
	}
	if m.ViolationCount() != int64(want.Total()) {
		t.Fatalf("ViolationCount = %d, want %d", m.ViolationCount(), want.Total())
	}
	if m.Len() != rel.Len() {
		t.Fatalf("Len = %d, want %d", m.Len(), rel.Len())
	}
	snap := m.Snapshot()
	for i, tp := range rel.Tuples {
		if !snap.Tuples[i].Equal(tp) {
			t.Fatalf("Snapshot row %d = %v, want %v", i, snap.Tuples[i], tp)
		}
	}
}

// TestInsertDeltas walks hand-computed deltas on a two-attribute schema
// with a mixed tableau (one wildcard FD row, one fully-constant row).
func TestInsertDeltas(t *testing.T) {
	schema := relation.MustSchema("T", relation.Attr("A"), relation.Attr("B"))
	cfd := core.MustCFD([]string{"A"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}},
		core.PatternRow{X: []core.Pattern{core.C("1")}, Y: []core.Pattern{core.C("x")}},
	)
	m, err := incremental.New(schema, []*core.CFD{cfd}, incremental.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}

	// (1, x): matches both rows, no conflict.
	k0, d, err := m.Insert(relation.Tuple{"1", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("clean insert produced delta %+v", d)
	}

	// (1, y): constant violation against row 2, and the A=1 group now
	// disagrees on B — two new violations in one delta.
	k1, d, err := m.Insert(relation.Tuple{"1", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 2 || len(d.Removed) != 0 {
		t.Fatalf("dirty insert delta = %+v, want 2 added", d)
	}
	var haveConst, haveVar bool
	for _, c := range d.Added {
		switch c.Kind {
		case core.ConstViolation:
			haveConst = c.Tuple == k1
		case core.VariableViolation:
			haveVar = len(c.Key) == 1 && c.Key[0] == "1"
		}
	}
	if !haveConst || !haveVar {
		t.Fatalf("delta misses expected changes: %+v", d)
	}
	if m.Satisfied() || m.ViolationCount() != 2 {
		t.Fatalf("expected 2 live violations, have %d", m.ViolationCount())
	}

	// Fixing B back to x retires both violations.
	d, err = m.Update(k1, "B", "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 0 || len(d.Removed) != 2 {
		t.Fatalf("repair delta = %+v, want 2 removed", d)
	}
	if !m.Satisfied() {
		t.Fatal("instance should be clean after repair")
	}

	// No-op update produces an empty delta.
	d, err = m.Update(k1, "B", "x")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("no-op update produced delta %+v", d)
	}

	// Deleting one member of a clean group changes nothing.
	d, err = m.Delete(k0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("clean delete produced delta %+v", d)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// TestUpdateMovesGroups: updating an LHS attribute moves the tuple between
// groups, retiring the old group's violation and possibly creating one in
// the new group.
func TestUpdateMovesGroups(t *testing.T) {
	schema := relation.MustSchema("T", relation.Attr("A"), relation.Attr("B"))
	cfd := core.MustCFD([]string{"A"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}})
	m, err := incremental.New(schema, []*core.CFD{cfd}, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _ = m.Insert(relation.Tuple{"g1", "x"})
	k1, _, _ := m.Insert(relation.Tuple{"g1", "y"}) // g1 violates
	_, _, _ = m.Insert(relation.Tuple{"g2", "x"})
	if m.ViolationCount() != 1 {
		t.Fatalf("want 1 violation, have %d", m.ViolationCount())
	}
	// Move the disagreeing tuple into g2: g1 heals, g2 breaks.
	d, err := m.Update(k1, "A", "g2")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || len(d.Removed) != 1 {
		t.Fatalf("move delta = %+v, want 1 added + 1 removed", d)
	}
	if d.Added[0].Key[0] != "g2" || d.Removed[0].Key[0] != "g1" {
		t.Fatalf("move delta keys wrong: %+v", d)
	}
	if m.ViolationCount() != 1 {
		t.Fatalf("want 1 violation after move, have %d", m.ViolationCount())
	}
}

// TestErrors covers the rejection paths: arity, domains, unknown keys and
// attributes, invalid Σ.
func TestErrors(t *testing.T) {
	schema := relation.MustSchema("T",
		relation.Attribute{Name: "A", Domain: relation.Bool()}, relation.Attr("B"))
	cfd := core.MustCFD([]string{"A"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}})
	m, err := incremental.New(schema, []*core.CFD{cfd}, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Insert(relation.Tuple{"true"}); err == nil {
		t.Error("arity violation accepted")
	}
	if _, _, err := m.Insert(relation.Tuple{"maybe", "b"}); err == nil {
		t.Error("domain violation accepted")
	}
	if _, err := m.Delete(99); err == nil {
		t.Error("deleting unknown key succeeded")
	}
	if _, err := m.Update(99, "B", "b"); err == nil {
		t.Error("updating unknown key succeeded")
	}
	k, _, err := m.Insert(relation.Tuple{"true", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(k, "C", "x"); err == nil {
		t.Error("updating unknown attribute succeeded")
	}
	if _, err := m.Update(k, "A", "maybe"); err == nil {
		t.Error("update outside domain succeeded")
	}
	if _, ok := m.Get(k); !ok {
		t.Error("Get lost the tuple")
	}
	if _, ok := m.Get(99); ok {
		t.Error("Get invented a tuple")
	}
	// Σ referencing a missing attribute is rejected at construction.
	bad := core.MustCFD([]string{"Z"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}})
	if _, err := incremental.New(schema, []*core.CFD{bad}, incremental.Options{}); err == nil {
		t.Error("invalid Σ accepted")
	}
}

// TestConcurrentReadersAndWriters hammers the monitor from parallel
// writers while readers snapshot continuously, then cross-checks the final
// state against the batch oracle. Run with -race to exercise the sharded
// locking.
func TestConcurrentReadersAndWriters(t *testing.T) {
	rel, sigma := custFixture(t)
	m, err := incremental.Load(rel, sigma, incremental.Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const writers, opsPerWriter = 4, 200
	var readerWG, writerWG sync.WaitGroup
	stop := make(chan struct{})
	// Readers: snapshot and Satisfied in a tight loop until writers finish.
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.Violations()
					_ = m.Satisfied()
				}
			}
		}()
	}
	// Writers: each inserts its own tuples, updates them, deletes half.
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			var keys []int64
			for i := 0; i < opsPerWriter; i++ {
				k, _, err := m.Insert(relation.Tuple{
					"01", "908", fmt.Sprintf("p%d-%d", w, i), "N", "S", "CT", "Z"})
				if err != nil {
					errs <- err
					return
				}
				keys = append(keys, k)
				if _, err := m.Update(k, "CT", fmt.Sprintf("c%d", i%3)); err != nil {
					errs <- err
					return
				}
			}
			for i, k := range keys {
				if i%2 == 0 {
					if _, err := m.Delete(k); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Final state must equal a batch run over the surviving tuples.
	keys := m.Keys()
	snap := m.Snapshot()
	want := oracleState(t, snap, sigma, keys)
	got := m.Violations()
	if !got.Equal(want) {
		t.Fatalf("final state diverges from batch detector:\ngot:\n%s\nwant:\n%s", describe(got), describe(want))
	}
}

// TestConcurrentSameKeyUpdates: writers racing on the SAME key must
// serialize as whole operations — interleaved remove/add index passes
// would leave phantom Y-values in the group multisets. Regression test
// for a bug where the tuple-store lock was dropped before index
// maintenance, permanently corrupting the live set.
func TestConcurrentSameKeyUpdates(t *testing.T) {
	rel, sigma := custFixture(t)
	for round := 0; round < 20; round++ {
		m, err := incremental.Load(rel, sigma, incremental.Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if _, err := m.Update(0, "CT", fmt.Sprintf("city-%d-%d", w, i)); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		// Heal sequentially: put key 0 back to its original values.
		if _, err := m.Update(0, "CT", "NYC"); err != nil {
			t.Fatal(err)
		}
		keys := m.Keys()
		want := oracleState(t, m.Snapshot(), sigma, keys)
		got := m.Violations()
		if !got.Equal(want) {
			t.Fatalf("round %d: live set diverged after same-key races:\ngot:\n%s\nwant:\n%s",
				round, describe(got), describe(want))
		}
		if m.ViolationCount() != int64(want.Total()) {
			t.Fatalf("round %d: ViolationCount = %d, oracle = %d", round, m.ViolationCount(), want.Total())
		}
	}
}

// TestConcurrentUpdateDeleteSameKey: an update racing a delete of the same
// key must either fully apply before the delete or fail with "no tuple";
// either way the final state matches the oracle.
func TestConcurrentUpdateDeleteSameKey(t *testing.T) {
	rel, sigma := custFixture(t)
	for round := 0; round < 20; round++ {
		m, err := incremental.Load(rel, sigma, incremental.Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, _ = m.Update(1, "CT", fmt.Sprintf("c%d", i)) // may fail after delete
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := m.Delete(1); err != nil {
				t.Error(err)
			}
		}()
		wg.Wait()
		want := oracleState(t, m.Snapshot(), sigma, m.Keys())
		got := m.Violations()
		if !got.Equal(want) {
			t.Fatalf("round %d: live set diverged after update/delete race:\ngot:\n%s\nwant:\n%s",
				round, describe(got), describe(want))
		}
	}
}
