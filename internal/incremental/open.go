package incremental

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/wal"
)

// ErrNoState reports a WAL directory without a recoverable snapshot.
var ErrNoState = errors.New("incremental: WAL directory holds no snapshot")

// Open boots a durable monitor from its WAL directory alone: the schema
// comes from the latest snapshot, so the original data source is neither
// needed nor read. Σ still comes from the caller — constraints are
// configuration, not state — and recovery verifies it against the image
// as usual. Returns ErrNoState when the directory has no snapshot to
// read the schema from (nothing was ever journaled there); callers fall
// back to seeding from the source via Load.
func Open(sigma []*core.CFD, opts Options) (*Monitor, error) {
	if opts.Durable == "" {
		return nil, errors.New("incremental: Open requires Options.Durable")
	}
	schema, err := SnapshotSchema(opts.Durable)
	if err != nil {
		return nil, err
	}
	return New(schema, sigma, opts)
}

// SnapshotSchema reads the schema embedded in the latest snapshot of a
// WAL directory. Only the header and schema section are decoded — not
// the relation image — so the call is cheap at any snapshot size.
func SnapshotSchema(dir string) (*relation.Schema, error) {
	snaps, _, err := wal.Generations(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoState
		}
		return nil, err
	}
	if len(snaps) == 0 {
		return nil, ErrNoState
	}
	f, err := os.Open(wal.SnapshotPath(dir, snaps[len(snaps)-1]))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("incremental: reading snapshot header: %w", err)
	}
	v2 := string(magic) == snapMagicV2
	if string(magic) != snapMagic && !v2 {
		return nil, errors.New("incremental: not a monitor snapshot")
	}
	if _, err := binary.ReadUvarint(br); err != nil { // nextKey
		return nil, fmt.Errorf("incremental: reading snapshot header: %w", err)
	}
	if !v2 {
		if _, err := binary.ReadUvarint(br); err != nil { // epoch
			return nil, fmt.Errorf("incremental: reading snapshot header: %w", err)
		}
	}
	name, err := readSnapStr(br)
	if err != nil {
		return nil, err
	}
	nattrs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("incremental: reading snapshot schema: %w", err)
	}
	if nattrs > maxSnapAttrs {
		return nil, fmt.Errorf("incremental: snapshot schema claims %d attributes", nattrs)
	}
	attrs := make([]relation.Attribute, 0, nattrs)
	for i := uint64(0); i < nattrs; i++ {
		aname, err := readSnapStr(br)
		if err != nil {
			return nil, err
		}
		flag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("incremental: reading snapshot schema: %w", err)
		}
		a := relation.Attr(aname)
		if flag == 1 {
			dname, err := readSnapStr(br)
			if err != nil {
				return nil, err
			}
			nvals, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("incremental: reading snapshot schema: %w", err)
			}
			if nvals > maxSnapDomain {
				return nil, fmt.Errorf("incremental: snapshot domain claims %d values", nvals)
			}
			vals := make([]relation.Value, 0, nvals)
			for j := uint64(0); j < nvals; j++ {
				v, err := readSnapStr(br)
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			a.Domain = &relation.Domain{Name: dname, Values: vals}
		}
		attrs = append(attrs, a)
	}
	return relation.NewSchema(name, attrs...)
}

// Sanity bounds for the streaming schema read: a corrupt length must read
// as corruption, not as an allocation request.
const (
	maxSnapStr    = 1 << 20
	maxSnapAttrs  = 1 << 16
	maxSnapDomain = 1 << 24
)

func readSnapStr(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("incremental: reading snapshot schema: %w", err)
	}
	if n > maxSnapStr {
		return "", fmt.Errorf("incremental: snapshot string of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("incremental: reading snapshot schema: %w", err)
	}
	return string(buf), nil
}
