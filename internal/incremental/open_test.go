package incremental_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// A WAL directory admits one journal at a time: a second monitor on the
// same directory must be refused while the first is open, and admitted
// once it closes (the advisory lock dies with the journal, and with the
// process on crash).
func TestWALDirectoryExclusive(t *testing.T) {
	schema, err := relation.NewSchema("R", relation.Attr("A"), relation.Attr("B"))
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := core.ParseSet("[A] -> [B]\n")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m, err := incremental.New(schema, sigma, incremental.Options{Durable: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := incremental.New(schema, sigma, incremental.Options{Durable: dir}); err == nil {
		t.Fatal("second monitor on a held WAL directory: no error")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := incremental.New(schema, sigma, incremental.Options{Durable: dir})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
}

// Open must boot a durable monitor from the WAL directory alone — no
// seed relation, schema reconstructed (domains included) from the latest
// snapshot — and fall back with ErrNoState when no snapshot exists yet.
func TestOpenFromWALDirectory(t *testing.T) {
	city := relation.Enum("city", "MH", "NYC", "PHI")
	schema, err := relation.NewSchema("cust",
		relation.Attr("AC"), relation.Attribute{Name: "CT", Domain: city})
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := core.ParseSet("[AC=908] -> [CT=MH]\n")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	if _, err := incremental.Open(sigma, incremental.Options{}); err == nil {
		t.Fatal("Open without Durable: no error")
	}
	if _, err := incremental.Open(sigma, incremental.Options{Durable: dir}); !errors.Is(err, incremental.ErrNoState) {
		t.Fatalf("Open on empty dir: err = %v, want ErrNoState", err)
	}

	m, err := incremental.New(schema, sigma, incremental.Options{Durable: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Insert(relation.Tuple{"908", "NYC"}); err != nil { // violates the constant CFD
		t.Fatal(err)
	}
	// Journaled records alone are not enough for Open — the schema lives
	// in the snapshot.
	if _, err := incremental.Open(sigma, incremental.Options{Durable: dir}); !errors.Is(err, incremental.ErrNoState) {
		t.Fatalf("Open before first snapshot: err = %v, want ErrNoState", err)
	}
	if err := m.ForceSnapshot(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Insert(relation.Tuple{"908", "MH"}); err != nil { // lands in the log tail
		t.Fatal(err)
	}
	wantLen, wantViol := m.Len(), m.ViolationCount()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := incremental.SnapshotSchema(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "cust" || len(got.Attrs) != 2 || got.Attrs[1].Domain == nil ||
		got.Attrs[1].Domain.Name != "city" || !reflect.DeepEqual(got.Attrs[1].Domain.Values, city.Values) {
		t.Fatalf("SnapshotSchema = %+v, want the original schema with its domain", got)
	}

	re, err := incremental.Open(sigma, incremental.Options{Durable: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Recovered() || re.Len() != wantLen || re.ViolationCount() != wantViol {
		t.Fatalf("opened monitor: recovered=%v len=%d violations=%d, want true/%d/%d",
			re.Recovered(), re.Len(), re.ViolationCount(), wantLen, wantViol)
	}
}
