package incremental

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"unsafe"

	"repro/internal/core"
	"repro/internal/relation"
)

// This file is the snapshot codec: a versioned, CRC-trailed binary image
// of the Monitor's full state — tuples, per-CFD group indexes, constant
// violation sets and violation counters — so a restart materializes the
// live state with plain map fills instead of re-running CFD evaluation
// over every tuple (the 10× recovery claim benchmarked in E9).
//
// The image embeds the schema and Σ it was taken under; loading verifies
// both against the caller's, so a WAL directory can never be silently
// reinterpreted under different constraints.
//
// Version 2 speaks value IDs. Process-local IDs (relation.Interner.ID)
// are never meaningful across restarts, so the image carries its own
// value table — the interner's ID→value list at snapshot time — and
// every tuple, group and Y-projection is a uvarint ID vector into it.
// Loading re-interns the table into the fresh monitor's pool and remaps
// every stored ID through the resulting translation, so the restored
// state is correct even though the new process assigns different IDs.
// Group map keys are not stored at all: they are re-derived by packing
// the remapped ID vectors (relation.AppendIDKey), which also keeps the
// shardOfKey routing consistent by construction.

// snapMagic identifies a Monitor snapshot. Version 3 adds the fencing
// epoch right after nextKey; version 2 images (same length, read-only
// compatibility) load as epoch 0 — exactly the epoch of everything
// written before fencing existed.
const (
	snapMagic   = "CFDSNAP\x03"
	snapMagicV2 = "CFDSNAP\x02"
)

// snapTable is the snapshot checksum polynomial. Castagnoli has hardware
// support (SSE4.2 / ARMv8 CRC instructions), which matters at tens of
// megabytes per image; the WAL keeps IEEE for its small per-record frames.
var snapTable = crc32.MakeTable(crc32.Castagnoli)

// --- encoder ---

type enc struct {
	w       io.Writer
	scratch []byte
	err     error
}

func (e *enc) bytes(p []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(p)
	}
}

func (e *enc) uvarint(v uint64) {
	e.scratch = binary.AppendUvarint(e.scratch[:0], v)
	e.bytes(e.scratch)
}

func (e *enc) byte(b byte) {
	e.scratch = append(e.scratch[:0], b)
	e.bytes(e.scratch)
}

// str frames the string through the reusable scratch buffer: one Write,
// no per-string allocation (snapshots write millions of values).
func (e *enc) str(s string) {
	e.scratch = binary.AppendUvarint(e.scratch[:0], uint64(len(s)))
	e.scratch = append(e.scratch, s...)
	e.bytes(e.scratch)
}

func (e *enc) strs(vals []relation.Value) {
	for _, v := range vals {
		e.str(v)
	}
}

// ids writes an ID vector as bare uvarints (the arity is known to the
// reader from the schema or CFD shape, so no length prefix).
func (e *enc) ids(ids []uint32) {
	for _, id := range ids {
		e.uvarint(uint64(id))
	}
}

// --- decoder ---

// dec reads from a fully-materialized image. Strings are substrings of
// one backing allocation, so decoding 100K tuples costs one copy total
// instead of one per value.
type dec struct {
	s   string
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("incremental: snapshot: "+format, args...)
	}
}

// uvarint parses in place (no []byte conversion: this runs millions of
// times on the recovery path and must not allocate).
func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	var x uint64
	var shift uint
	for i := 0; ; i++ {
		if d.off >= len(d.s) {
			d.fail("truncated varint at offset %d", d.off)
			return 0
		}
		b := d.s[d.off]
		d.off++
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 || i >= binary.MaxVarintLen64 {
				d.fail("varint overflow at offset %d", d.off)
				return 0
			}
			return x | uint64(b)<<shift
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.s) {
		d.fail("unexpected end at offset %d", d.off)
		return 0
	}
	b := d.s[d.off]
	d.off++
	return b
}

func (d *dec) str() string {
	n := int(d.uvarint())
	if d.err != nil {
		return ""
	}
	if n < 0 || d.off+n > len(d.s) {
		d.fail("string of %d bytes overruns image at offset %d", n, d.off)
		return ""
	}
	s := d.s[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) strs(n int) []relation.Value {
	out := make([]relation.Value, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

// id reads one stored ID and translates it through remap (the image's
// value table re-interned into the live pool). Out-of-table IDs mark
// the image corrupt.
func (d *dec) id(remap []uint32) uint32 {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v >= uint64(len(remap)) {
		d.fail("value ID %d outside table of %d at offset %d", v, len(remap), d.off)
		return 0
	}
	return remap[v]
}

// --- schema / sigma sections ---

func encodeSchema(e *enc, s *relation.Schema) {
	e.str(s.Name)
	e.uvarint(uint64(s.Len()))
	for _, a := range s.Attrs {
		e.str(a.Name)
		if a.Domain == nil {
			e.byte(0)
			continue
		}
		e.byte(1)
		e.str(a.Domain.Name)
		e.uvarint(uint64(len(a.Domain.Values)))
		e.strs(a.Domain.Values)
	}
}

// checkSchema decodes the schema section and verifies it matches want.
func checkSchema(d *dec, want *relation.Schema) {
	if name := d.str(); d.err == nil && name != want.Name {
		d.fail("schema name %q, monitor has %q", name, want.Name)
	}
	n := int(d.uvarint())
	if d.err == nil && n != want.Len() {
		d.fail("schema has %d attributes, monitor has %d", n, want.Len())
	}
	for i := 0; i < n && d.err == nil; i++ {
		name := d.str()
		if d.err == nil && name != want.Attrs[i].Name {
			d.fail("attribute %d is %q, monitor has %q", i, name, want.Attrs[i].Name)
		}
		hasDomain := d.byte() == 1
		var wantDom *relation.Domain
		if i < want.Len() {
			wantDom = want.Attrs[i].Domain
		}
		if !hasDomain {
			if d.err == nil && wantDom != nil {
				d.fail("attribute %q lost its domain", name)
			}
			continue
		}
		domName := d.str()
		vals := d.strs(int(d.uvarint()))
		if d.err != nil {
			return
		}
		if wantDom == nil {
			d.fail("attribute %q gained domain %q", name, domName)
			return
		}
		if domName != wantDom.Name || len(vals) != len(wantDom.Values) {
			d.fail("attribute %q domain changed", name)
			return
		}
		for j := range vals {
			if vals[j] != wantDom.Values[j] {
				d.fail("attribute %q domain values changed", name)
				return
			}
		}
	}
}

func encodeSigma(e *enc, sigma []*core.CFD) {
	e.uvarint(uint64(len(sigma)))
	for _, c := range sigma {
		e.uvarint(uint64(len(c.LHS)))
		for _, a := range c.LHS {
			e.str(a)
		}
		e.uvarint(uint64(len(c.RHS)))
		for _, a := range c.RHS {
			e.str(a)
		}
		e.uvarint(uint64(len(c.Tableau)))
		for _, row := range c.Tableau {
			encodeCells(e, row.X)
			encodeCells(e, row.Y)
		}
	}
}

func encodeCells(e *enc, cells []core.Pattern) {
	for _, p := range cells {
		if p.Kind == core.Const {
			e.byte(1)
			e.str(p.Val)
		} else {
			e.byte(0)
		}
	}
}

// checkSigma decodes the Σ section and verifies it matches want
// structurally — same CFDs, same order, same tableaux.
func checkSigma(d *dec, want []*core.CFD) {
	n := int(d.uvarint())
	if d.err == nil && n != len(want) {
		d.fail("snapshot has %d CFDs, monitor has %d", n, len(want))
	}
	for i := 0; i < n && d.err == nil; i++ {
		c := want[i]
		if !checkAttrList(d, c.LHS) || !checkAttrList(d, c.RHS) {
			d.fail("CFD %d attribute lists changed", i)
			return
		}
		rows := int(d.uvarint())
		if d.err == nil && rows != len(c.Tableau) {
			d.fail("CFD %d has %d tableau rows, monitor has %d", i, rows, len(c.Tableau))
		}
		for r := 0; r < rows && d.err == nil; r++ {
			if !checkCells(d, c.Tableau[r].X) || !checkCells(d, c.Tableau[r].Y) {
				d.fail("CFD %d tableau row %d changed", i, r)
				return
			}
		}
	}
}

func checkAttrList(d *dec, want []string) bool {
	n := int(d.uvarint())
	if d.err != nil || n != len(want) {
		return false
	}
	for _, a := range want {
		if d.str() != a || d.err != nil {
			return false
		}
	}
	return true
}

func checkCells(d *dec, want []core.Pattern) bool {
	for _, p := range want {
		isConst := d.byte() == 1
		if d.err != nil {
			return false
		}
		if isConst != (p.Kind == core.Const) {
			return false
		}
		if isConst && (d.str() != p.Val || d.err != nil) {
			return false
		}
	}
	return true
}

// --- the snapshot itself ---

// writeSnapshot serializes the full Monitor state. The journal holds its
// mutex across the call, so no mutation is in flight; unexported because
// a caller without that quiescing would serialize a torn image.
func (m *Monitor) writeSnapshot(w io.Writer) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	h := crc32.New(snapTable)
	e := &enc{w: io.MultiWriter(w, h)}

	e.uvarint(uint64(m.nextKey.Load()))
	e.uvarint(m.epoch.Load())
	encodeSchema(e, m.schema)
	encodeSigma(e, m.sigma)

	// Value table: the interner's ID→value list. Mutations are quiesced,
	// so every ID stored in this monitor's state predates this copy and
	// indexes into it — even when the pool is shared and other monitors
	// keep interning concurrently (the table can only be longer).
	vals := m.vals.Values()
	e.uvarint(uint64(len(vals)))
	e.strs(vals)

	// Tuple store, keyed; tuples are ID vectors of schema arity.
	e.uvarint(uint64(m.size.Load()))
	for si := range m.tuples {
		sh := &m.tuples[si]
		sh.mu.RLock()
		for k, t := range sh.m {
			e.uvarint(uint64(k))
			e.ids(t)
		}
		sh.mu.RUnlock()
	}

	// Per-CFD live state: violation counter, constant violations, groups
	// and the flat Y-projection multiset. Everything is written as flat
	// entry lists so recovery is pure presized-map fills.
	for _, cs := range m.cfds {
		e.uvarint(uint64(cs.violations.Load()))
		var nconsts uint64
		for si := range cs.consts {
			cs.consts[si].mu.RLock()
			nconsts += uint64(len(cs.consts[si].m))
			cs.consts[si].mu.RUnlock()
		}
		e.uvarint(nconsts)
		for si := range cs.consts {
			sh := &cs.consts[si]
			sh.mu.RLock()
			for k := range sh.m {
				e.uvarint(uint64(k))
			}
			sh.mu.RUnlock()
		}
		var ngroups, nyks uint64
		for si := range cs.groups {
			cs.groups[si].mu.RLock()
			ngroups += uint64(len(cs.groups[si].m))
			nyks += uint64(len(cs.groups[si].yCounts))
			cs.groups[si].mu.RUnlock()
		}
		// Groups are written in a stable order and the yCounts entries
		// reference them by that ordinal, so restoring never re-hashes a
		// group key. Only the ID vector is stored — the packed map key is
		// re-derived from it on load.
		e.uvarint(ngroups)
		groupIdx := make(map[*group]uint64, ngroups)
		for si := range cs.groups {
			sh := &cs.groups[si]
			sh.mu.RLock()
			for _, g := range sh.m {
				groupIdx[g] = uint64(len(groupIdx))
				e.ids(g.xids) // len(LHS) IDs
				if g.selected {
					e.byte(1)
				} else {
					e.byte(0)
				}
				e.uvarint(uint64(g.size))
				e.uvarint(uint64(g.distinct))
			}
			sh.mu.RUnlock()
		}
		e.uvarint(nyks)
		var ykIDs []uint32
		for si := range cs.groups {
			sh := &cs.groups[si]
			sh.mu.RLock()
			for kk, c := range sh.yCounts {
				e.uvarint(groupIdx[kk.g])
				ykIDs = relation.DecodeIDKey(ykIDs[:0], kk.yk)
				e.ids(ykIDs) // len(RHS) IDs
				e.uvarint(uint64(c))
			}
			sh.mu.RUnlock()
		}
	}
	if e.err != nil {
		return e.err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	_, err := w.Write(sum[:])
	return err
}

// readSnapshot restores a Monitor's state from an image produced by
// writeSnapshot. The monitor must be freshly built (empty) from the same
// schema and Σ; both are verified against the image. sizeHint, when
// positive, is the total image size (e.g. the snapshot file size) so the
// image is read in one exact-size allocation instead of ReadAll's
// doubling copies.
func (m *Monitor) readSnapshot(r io.Reader, sizeHint int64) error {
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("incremental: snapshot: reading magic: %w", err)
	}
	v2 := string(magic) == snapMagicV2
	if string(magic) != snapMagic && !v2 {
		return fmt.Errorf("incremental: snapshot: bad magic %q", magic)
	}
	var raw []byte
	var err error
	if rest := sizeHint - int64(len(snapMagic)); rest > 0 {
		raw = make([]byte, rest)
		if _, err = io.ReadFull(r, raw); err != nil {
			return fmt.Errorf("incremental: snapshot: %w", err)
		}
	} else if raw, err = io.ReadAll(r); err != nil {
		return fmt.Errorf("incremental: snapshot: %w", err)
	}
	if len(raw) < 4 {
		return fmt.Errorf("incremental: snapshot: image too short")
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, snapTable) != sum {
		return fmt.Errorf("incremental: snapshot: CRC mismatch")
	}
	// Zero-copy view: every decoded string below is a substring of the
	// image, so tuple values alias one backing array instead of being
	// re-allocated (or re-copied) one by one. The bytes are never written
	// again after this point, which is what makes the unsafe view sound.
	d := &dec{s: unsafe.String(unsafe.SliceData(body), len(body))}

	nextKey := int64(d.uvarint())
	var epoch uint64
	if !v2 {
		epoch = d.uvarint()
	}
	checkSchema(d, m.schema)
	checkSigma(d, m.sigma)
	if d.err != nil {
		return d.err
	}

	// Value table: re-intern every image value into the live pool and
	// keep the old-ID → new-ID translation. The interner clones what it
	// keeps, so nothing below aliases the image once remapped.
	nvals := int(d.uvarint())
	if d.err != nil {
		return d.err
	}
	remap := make([]uint32, nvals)
	for i := range remap {
		remap[i] = m.vals.ID(d.str())
		if d.err != nil {
			return d.err
		}
	}

	// presize over-allocates shard maps ~12% above the uniform share so
	// hash skew doesn't trigger a growth rehash mid-fill.
	presize := func(n int) int { return n / m.shards * 9 / 8 }
	ntuples := int(d.uvarint())
	for si := range m.tuples {
		m.tuples[si].m = make(map[int64]idTuple, presize(ntuples))
	}
	nattrs := m.schema.Len()
	// Arena: one backing array for every tuple's IDs, sliced per tuple —
	// the map stores slice headers, so the whole tuple store costs one
	// allocation instead of one per row.
	tupleArena := make([]uint32, ntuples*nattrs)
	for i := 0; i < ntuples; i++ {
		k := int64(d.uvarint())
		t := idTuple(tupleArena[i*nattrs : (i+1)*nattrs : (i+1)*nattrs])
		for j := range t {
			t[j] = d.id(remap)
		}
		if d.err != nil {
			return d.err
		}
		m.tuples[shardOfTuple(k, m.shards)].m[k] = t
	}

	for _, cs := range m.cfds {
		nlhs := len(cs.cfd.LHS)
		cs.violations.Store(int64(d.uvarint()))
		nconsts := int(d.uvarint())
		for si := range cs.consts {
			cs.consts[si].m = make(map[int64]bool, presize(nconsts))
		}
		for i := 0; i < nconsts; i++ {
			k := int64(d.uvarint())
			if d.err != nil {
				return d.err
			}
			cs.consts[shardOfTuple(k, m.shards)].m[k] = true
		}
		ngroups := int(d.uvarint())
		for si := range cs.groups {
			cs.groups[si].m = make(map[string]*group, presize(ngroups))
		}
		// Arenas again: group structs and their xids slices in two backing
		// arrays, pointers into them in the maps. The shard of each group
		// is remembered by ordinal so the yCounts fill below re-derives
		// nothing. Map keys are packed from the remapped ID vectors —
		// exactly what the live add() path builds, so routing agrees.
		groupArena := make([]group, ngroups)
		xArena := make([]uint32, ngroups*nlhs)
		groupShardIdx := make([]int32, ngroups)
		var keyBuf []byte
		for i := 0; i < ngroups; i++ {
			g := &groupArena[i]
			g.xids = xArena[i*nlhs : (i+1)*nlhs : (i+1)*nlhs]
			for j := range g.xids {
				g.xids[j] = d.id(remap)
			}
			g.selected = d.byte() == 1
			g.size = int(d.uvarint())
			g.distinct = int(d.uvarint())
			if d.err != nil {
				return d.err
			}
			keyBuf = relation.AppendIDKey(keyBuf[:0], g.xids)
			xk := string(keyBuf)
			si := shardOfKey(xk, m.shards)
			groupShardIdx[i] = int32(si)
			cs.groups[si].m[xk] = g
		}
		nyks := int(d.uvarint())
		for si := range cs.groups {
			cs.groups[si].yCounts = make(map[ykKey]int, presize(nyks))
		}
		nrhs := len(cs.cfd.RHS)
		ykIDs := make([]uint32, nrhs)
		for i := 0; i < nyks; i++ {
			gi := int(d.uvarint())
			for j := range ykIDs {
				ykIDs[j] = d.id(remap)
			}
			c := int(d.uvarint())
			if d.err != nil {
				return d.err
			}
			if gi >= ngroups {
				d.fail("yCounts entry %d references group %d of %d", i, gi, ngroups)
				return d.err
			}
			keyBuf = relation.AppendIDKey(keyBuf[:0], ykIDs)
			yk, _ := m.keys.InternBytes(keyBuf)
			cs.groups[groupShardIdx[gi]].yCounts[ykKey{g: &groupArena[gi], yk: yk}] = c
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.s) {
		return fmt.Errorf("incremental: snapshot: %d trailing bytes", len(d.s)-d.off)
	}
	m.nextKey.Store(nextKey)
	m.epoch.Store(epoch)
	m.size.Store(int64(ntuples))
	// The stores were filled directly, without deltas; reseed the
	// maintained view's fold maps so Violations serves the restored set
	// (WAL-tail replay then folds on top).
	m.rebuildViewBase()
	return nil
}
