package incremental

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
)

func snapshotFixture(t *testing.T) (*relation.Schema, []*core.CFD, *Monitor) {
	t.Helper()
	schema := relation.MustSchema("cust",
		relation.Attr("CC"), relation.Attr("AC"), relation.Attr("PN"),
		relation.Attribute{Name: "CT", Domain: relation.Enum("city", "MH", "NYC", "PHI")})
	sigma, err := core.ParseSet(`
[CC, AC] -> [CT]
[CC=01, AC=908] -> [CT=MH]
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(schema, sigma, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range [][]string{
		{"01", "908", "1111111", "NYC"}, // breaks 908→MH and will split its group
		{"01", "908", "2222222", "MH"},
		{"01", "212", "3333333", "NYC"},
	} {
		if _, _, err := m.Insert(relation.Tuple(tp)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Delete(1); err != nil {
		t.Fatal(err)
	}
	return schema, sigma, m
}

// TestSnapshotRoundTrip: WriteSnapshot → readSnapshot must reproduce the
// tuples, keys, violation set and key allocator exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	schema, sigma, m := snapshotFixture(t)
	var buf bytes.Buffer
	if err := m.writeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Restore under a different shard count: the image is shard-layout
	// independent.
	m2, err := New(schema, sigma, Options{Shards: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.readSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len())); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != m.Len() {
		t.Fatalf("Len = %d, want %d", m2.Len(), m.Len())
	}
	if got, want := m2.Keys(), m.Keys(); len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Keys = %v, want %v", got, want)
			}
		}
	}
	for _, k := range m.Keys() {
		want, _ := m.Get(k)
		got, ok := m2.Get(k)
		if !ok || !got.Equal(want) {
			t.Fatalf("tuple %d = %v, want %v", k, got, want)
		}
	}
	if !m2.Violations().Equal(m.Violations()) {
		t.Fatalf("violations diverge after round trip")
	}
	if m2.ViolationCount() != m.ViolationCount() {
		t.Fatalf("ViolationCount = %d, want %d", m2.ViolationCount(), m.ViolationCount())
	}
	// The key allocator must continue past the deleted key 1.
	key, _, err := m2.Insert(relation.Tuple{"01", "212", "4444444", "NYC"})
	if err != nil {
		t.Fatal(err)
	}
	if key != 3 {
		t.Fatalf("next key after restore = %d, want 3", key)
	}
}

// TestSnapshotRejectsCorruption: a flipped byte anywhere in the body must
// fail the CRC, and mismatched schema/Σ must be refused.
func TestSnapshotRejectsCorruption(t *testing.T) {
	schema, sigma, m := snapshotFixture(t)
	var buf bytes.Buffer
	if err := m.writeSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0x40
	m2, _ := New(schema, sigma, Options{})
	if err := m2.readSnapshot(bytes.NewReader(corrupt), 0); err == nil {
		t.Fatal("corrupt image must fail the CRC")
	}

	truncated := buf.Bytes()[:buf.Len()/2]
	m3, _ := New(schema, sigma, Options{})
	if err := m3.readSnapshot(bytes.NewReader(truncated), 0); err == nil {
		t.Fatal("truncated image must be rejected")
	}

	otherSigma, err := core.ParseSet("[CC] -> [CT]")
	if err != nil {
		t.Fatal(err)
	}
	m4, _ := New(schema, otherSigma, Options{})
	if err := m4.readSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len())); err == nil {
		t.Fatal("Σ mismatch must be rejected")
	}

	otherSchema := relation.MustSchema("cust",
		relation.Attr("CC"), relation.Attr("AC"), relation.Attr("PN"), relation.Attr("CT"))
	m5, _ := New(otherSchema, sigma, Options{})
	if err := m5.readSnapshot(bytes.NewReader(buf.Bytes()), int64(buf.Len())); err == nil {
		t.Fatal("schema mismatch (lost domain) must be rejected")
	}
}
