package incremental_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// The property harness: replay long randomized insert/delete/update streams
// against a Monitor and, after EVERY step, cross-check three ways:
//
//  1. the Monitor's live violation set equals a fresh batch detect.Direct
//     run over a mirror of the surviving tuples;
//  2. a violation set reconstructed purely from the emitted deltas equals
//     the live set (deltas are exact: no missed, duplicated or phantom
//     changes);
//  3. Satisfied() agrees with the oracle.
//
// Value pools are deliberately tiny so that X-groups collide constantly and
// variable violations appear and retire throughout the stream.

// streamConfig is one schema + Σ + value-pool scenario.
type streamConfig struct {
	name   string
	schema *relation.Schema
	sigma  []*core.CFD
	pools  [][]relation.Value // candidate values per attribute, in schema order
	seed   int64
	steps  int
}

func streamConfigs(t *testing.T) []streamConfig {
	t.Helper()
	// Scenario 1: the paper's cust schema with the Figure 2 CFD set —
	// multi-row tableaux mixing wildcard and constant patterns.
	cust := relation.MustSchema("cust",
		relation.Attr("CC"), relation.Attr("AC"), relation.Attr("PN"),
		relation.Attr("NM"), relation.Attr("STR"), relation.Attr("CT"), relation.Attr("ZIP"))
	custSigma, err := core.ParseSet(`
[CC=44, ZIP] -> [STR]
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
[CC, AC] -> [CT]
[CC=01, AC=215] -> [CT=PHI]
[CC=44, AC=141] -> [CT=GLA]
`)
	if err != nil {
		t.Fatal(err)
	}
	custPools := [][]relation.Value{
		{"01", "44"},
		{"908", "212", "215", "141"},
		{"1111111", "2222222"},
		{"Mike", "Rick", "Joe"},
		{"Tree Ave.", "Elm Str."},
		{"MH", "NYC", "PHI", "GLA"},
		{"07974", "01202"},
	}

	// Scenario 2: finite (bool) domains — a wildcard FD plus an
	// instance-level fully-constant row over the same embedded FD.
	boolSchema := relation.MustSchema("flags",
		relation.Attribute{Name: "A", Domain: relation.Bool()},
		relation.Attribute{Name: "B", Domain: relation.Bool()})
	boolSigma := []*core.CFD{
		core.MustCFD([]string{"A"}, []string{"B"},
			core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}}),
		core.MustCFD([]string{"A"}, []string{"B"},
			core.PatternRow{X: []core.Pattern{core.C("true")}, Y: []core.Pattern{core.C("false")}}),
	}
	boolPools := [][]relation.Value{{"true", "false"}, {"true", "false"}}

	// Scenario 3: a three-attribute schema with a mixed-mask tableau
	// (all-wildcard row, partially-constant rows) and a second CFD whose
	// LHS is the first CFD's RHS, so one update ripples through both.
	abc := relation.MustSchema("abc",
		relation.Attr("A"), relation.Attr("B"), relation.Attr("C"))
	abcSigma := []*core.CFD{
		core.MustCFD([]string{"A", "B"}, []string{"C"},
			core.PatternRow{X: []core.Pattern{core.W(), core.W()}, Y: []core.Pattern{core.W()}},
			core.PatternRow{X: []core.Pattern{core.C("a1"), core.W()}, Y: []core.Pattern{core.C("c1")}},
			core.PatternRow{X: []core.Pattern{core.W(), core.C("b2")}, Y: []core.Pattern{core.W()}},
		),
		core.MustCFD([]string{"C"}, []string{"A"},
			core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}}),
	}
	abcPools := [][]relation.Value{
		{"a1", "a2"},
		{"b1", "b2"},
		{"c1", "c2", "c3"},
	}

	return []streamConfig{
		{name: "cust-figure2", schema: cust, sigma: custSigma, pools: custPools, seed: 101, steps: 400},
		{name: "bool-domains", schema: boolSchema, sigma: boolSigma, pools: boolPools, seed: 202, steps: 400},
		{name: "mixed-masks", schema: abc, sigma: abcSigma, pools: abcPools, seed: 303, steps: 400},
	}
}

// liveSet reconstructs the violation set from deltas alone.
type liveSet struct {
	consts []map[int64]bool
	vars   []map[string][]relation.Value
}

func newLiveSet(n int) *liveSet {
	ls := &liveSet{consts: make([]map[int64]bool, n), vars: make([]map[string][]relation.Value, n)}
	for i := 0; i < n; i++ {
		ls.consts[i] = make(map[int64]bool)
		ls.vars[i] = make(map[string][]relation.Value)
	}
	return ls
}

// apply folds a delta in, failing the test on any inexact change: adding a
// violation that is already live, or removing one that is not.
func (ls *liveSet) apply(t *testing.T, step int, d *incremental.Delta) {
	t.Helper()
	for _, c := range d.Added {
		if c.Kind == core.ConstViolation {
			if ls.consts[c.CFD][c.Tuple] {
				t.Fatalf("step %d: delta re-adds live const violation %v", step, c)
			}
			ls.consts[c.CFD][c.Tuple] = true
		} else {
			k := relation.EncodeKey(c.Key)
			if _, ok := ls.vars[c.CFD][k]; ok {
				t.Fatalf("step %d: delta re-adds live variable violation %v", step, c)
			}
			ls.vars[c.CFD][k] = append([]relation.Value(nil), c.Key...)
		}
	}
	for _, c := range d.Removed {
		if c.Kind == core.ConstViolation {
			if !ls.consts[c.CFD][c.Tuple] {
				t.Fatalf("step %d: delta removes absent const violation %v", step, c)
			}
			delete(ls.consts[c.CFD], c.Tuple)
		} else {
			k := relation.EncodeKey(c.Key)
			if _, ok := ls.vars[c.CFD][k]; !ok {
				t.Fatalf("step %d: delta removes absent variable violation %v", step, c)
			}
			delete(ls.vars[c.CFD], k)
		}
	}
}

func (ls *liveSet) state() *incremental.State {
	st := &incremental.State{PerCFD: make([]incremental.CFDViolations, len(ls.consts))}
	for i := range ls.consts {
		var cv incremental.CFDViolations
		for k := range ls.consts[i] {
			cv.ConstTuples = append(cv.ConstTuples, k)
		}
		sort.Slice(cv.ConstTuples, func(a, b int) bool { return cv.ConstTuples[a] < cv.ConstTuples[b] })
		keys := make([]string, 0, len(ls.vars[i]))
		for k := range ls.vars[i] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			cv.VariableKeys = append(cv.VariableKeys, ls.vars[i][k])
		}
		st.PerCFD[i] = cv
	}
	return st
}

// mirror is the test's independent copy of the live instance.
type mirror struct {
	order []int64
	m     map[int64]relation.Tuple
}

func (mr *mirror) relation(schema *relation.Schema) (*relation.Relation, []int64) {
	rel := relation.New(schema)
	for _, k := range mr.order {
		rel.Tuples = append(rel.Tuples, mr.m[k])
	}
	return rel, mr.order
}

func (mr *mirror) delete(key int64) {
	delete(mr.m, key)
	for i, k := range mr.order {
		if k == key {
			mr.order = append(mr.order[:i], mr.order[i+1:]...)
			return
		}
	}
}

// TestRandomStreamsMatchOracle is the main property test: ≥1k mixed steps
// across three scenarios, oracle-checked after every step.
func TestRandomStreamsMatchOracle(t *testing.T) {
	for _, cfg := range streamConfigs(t) {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(cfg.seed))
			m, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			mr := &mirror{m: make(map[int64]relation.Tuple)}
			ls := newLiveSet(len(cfg.sigma))
			randomTuple := func() relation.Tuple {
				tp := make(relation.Tuple, cfg.schema.Len())
				for i := range tp {
					pool := cfg.pools[i]
					tp[i] = pool[rng.Intn(len(pool))]
				}
				return tp
			}
			for step := 0; step < cfg.steps; step++ {
				op := rng.Float64()
				switch {
				case len(mr.order) == 0 || (op < 0.45 && len(mr.order) < 80):
					tp := randomTuple()
					key, d, err := m.Insert(tp)
					if err != nil {
						t.Fatalf("step %d: insert: %v", step, err)
					}
					mr.m[key] = tp.Clone()
					mr.order = append(mr.order, key)
					ls.apply(t, step, d)
				case op < 0.70 || len(mr.order) >= 80:
					key := mr.order[rng.Intn(len(mr.order))]
					d, err := m.Delete(key)
					if err != nil {
						t.Fatalf("step %d: delete %d: %v", step, key, err)
					}
					mr.delete(key)
					ls.apply(t, step, d)
				default:
					key := mr.order[rng.Intn(len(mr.order))]
					ai := rng.Intn(cfg.schema.Len())
					attr := cfg.schema.Attrs[ai].Name
					val := cfg.pools[ai][rng.Intn(len(cfg.pools[ai]))]
					d, err := m.Update(key, attr, val)
					if err != nil {
						t.Fatalf("step %d: update %d.%s=%s: %v", step, key, attr, val, err)
					}
					mr.m[key][ai] = val
					ls.apply(t, step, d)
				}

				rel, keys := mr.relation(cfg.schema)
				want := oracleState(t, rel, cfg.sigma, keys)
				got := m.Violations()
				if !got.Equal(want) {
					t.Fatalf("step %d: live set diverges from batch oracle (%d tuples):\ngot:\n%s\nwant:\n%s",
						step, len(keys), describe(got), describe(want))
				}
				if fromDeltas := ls.state(); !fromDeltas.Equal(want) {
					t.Fatalf("step %d: delta-reconstructed set diverges from oracle:\ngot:\n%s\nwant:\n%s",
						step, describe(fromDeltas), describe(want))
				}
				if m.Satisfied() != want.Clean() {
					t.Fatalf("step %d: Satisfied() = %v, oracle clean = %v", step, m.Satisfied(), want.Clean())
				}
				if m.ViolationCount() != int64(want.Total()) {
					t.Fatalf("step %d: ViolationCount = %d, oracle total = %d", step, m.ViolationCount(), want.Total())
				}
			}
			if m.Len() != len(mr.order) {
				t.Fatalf("final Len = %d, mirror has %d", m.Len(), len(mr.order))
			}
		})
	}
}
