package incremental

import (
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/wal"
)

// This file is the primary side of WAL segment shipping: a durable
// monitor exposes its snapshot and its log segments — closed ones in
// full, the live tail up to the flushed boundary — as record-aligned
// chunks a Follower tails into its own WAL directory. The journal mutex
// is held only to pin a consistent (generation, flushed-size) view; the
// file reads themselves run outside it, against immutable closed
// segments or the append-only prefix of the live one.

// ErrSegmentGone reports a shipping cursor below the primary's retention
// window: the segment was garbage-collected, and the follower must
// resync from the current snapshot instead of resuming the tail.
var ErrSegmentGone = errors.New("incremental: WAL segment garbage-collected; resync from snapshot")

// ShipChunk is one record-aligned slice of a primary's WAL stream.
type ShipChunk struct {
	// Seq and Offset locate Data: byte Offset of segment wal-Seq.
	Seq    uint64
	Offset int64
	// Data holds whole framed records (wal.ScanRecords parses them);
	// empty when the cursor is caught up with the segment.
	Data    []byte
	Records int
	// Closed reports that wal-Seq is no longer the live segment: once
	// its bytes are exhausted the cursor advances to NextSeq at offset 0
	// (and the follower rolls its own generation at that boundary).
	Closed  bool
	NextSeq uint64
	// EndSeq and EndOffset are the primary's current generation and its
	// flushed segment length — the position a fully-caught-up follower
	// would hold, used for replication-lag accounting.
	EndSeq    uint64
	EndOffset int64
	// Epoch is the fencing epoch the source is serving at. A follower
	// refuses chunks whose epoch is below its own — a source that fell
	// behind a promotion is a deposed history (see fence.go).
	Epoch uint64
}

// shipView pins a consistent view of the journal for one chunk read:
// the live generation, its flushed length, and whether the requested
// segment is closed. The log buffer is flushed so the live tail is
// readable from the file.
func (j *journal) shipView(seq uint64) (view ShipChunk, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return view, errClosed
	}
	flushed, err := j.log.FlushedSize()
	if err != nil {
		return view, err
	}
	view.Seq = seq
	view.EndSeq, view.EndOffset = j.seq, flushed
	if seq > j.seq {
		return view, fmt.Errorf("incremental: ship cursor at generation %d, primary at %d", seq, j.seq)
	}
	if seq < j.seq {
		view.Closed, view.NextSeq = true, seq+1
		if seq < j.segmentFloor(j.seq) {
			return view, ErrSegmentGone
		}
	}
	return view, nil
}

// WALChunk reads up to maxBytes of framed records from segment seq
// starting at offset, for shipping to a follower. Whole records only:
// the chunk never splits a frame, so a cursor advanced by its length
// always lands on a record boundary. An empty Data with Closed set means
// the segment is exhausted — advance to NextSeq; empty without Closed
// means the follower is caught up with the live tail. ErrSegmentGone
// reports a cursor below the retention window.
func (m *Monitor) WALChunk(seq uint64, offset int64, maxBytes int) (ShipChunk, error) {
	if m.j == nil {
		return ShipChunk{}, errors.New("incremental: monitor is not durable")
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	for attempt := 0; ; attempt++ {
		view, err := m.j.shipView(seq)
		if err != nil {
			return view, err
		}
		// Stamped after the view is pinned: promoteTo publishes the new
		// epoch under j.mu before its first post-promotion record can be
		// appended, so a chunk carrying such a record always carries an
		// epoch at least that high.
		view.Epoch = m.epoch.Load()
		view.Offset = offset
		limit := view.EndOffset
		path := wal.LogPath(m.j.dir, seq)
		if view.Closed {
			fi, err := os.Stat(path)
			if os.IsNotExist(err) {
				// GC'd between the view and the read (or the retention
				// window moved); re-pin once, then report the reset.
				if attempt == 0 {
					continue
				}
				return view, ErrSegmentGone
			}
			if err != nil {
				return view, err
			}
			limit = fi.Size()
		}
		if offset == limit {
			return view, nil // caught up (or closed segment exhausted)
		}
		data, records, err := wal.ReadChunk(path, offset, maxBytes, limit)
		if os.IsNotExist(err) {
			if attempt == 0 {
				continue
			}
			return view, ErrSegmentGone
		}
		if err != nil {
			return view, err
		}
		view.Data, view.Records = data, records
		return view, nil
	}
}

// ShipSnapshot opens the primary's newest snapshot for streaming to a
// follower, returning its generation, a reader over the image, and the
// image size. A durable monitor that has never snapshotted (an empty,
// never-seeded directory) takes one first, so a follower can always
// bootstrap. The reader holds an open file and must be closed; rotation
// may unlink the file meanwhile, which leaves the stream intact.
func (m *Monitor) ShipSnapshot() (seq uint64, rc io.ReadCloser, size int64, err error) {
	if m.j == nil {
		return 0, nil, 0, errors.New("incremental: monitor is not durable")
	}
	for attempt := 0; ; attempt++ {
		j := m.j
		j.mu.Lock()
		if j.closed {
			j.mu.Unlock()
			return 0, nil, 0, errClosed
		}
		seq = j.seq
		f, err := os.Open(wal.SnapshotPath(j.dir, seq))
		j.mu.Unlock()
		if err == nil {
			fi, serr := f.Stat()
			if serr != nil {
				f.Close()
				return 0, nil, 0, serr
			}
			return seq, f, fi.Size(), nil
		}
		if !os.IsNotExist(err) || attempt > 0 {
			return 0, nil, 0, err
		}
		// Generation without a snapshot: only a fresh, never-seeded
		// directory (generation 0). Roll one so the follower has a base.
		if err := j.snapshot(m); err != nil {
			return 0, nil, 0, err
		}
	}
}

// walCursor reports the durable monitor's current (generation, flushed
// byte length) — where a follower's cursor starts after local recovery.
func (m *Monitor) walCursor() (seq uint64, off int64, err error) {
	j := m.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, 0, errClosed
	}
	off, err = j.log.FlushedSize()
	return j.seq, off, err
}

// errNotFollowing reports a replication apply against a monitor whose
// read-only gate is already down: promotion won the race against an
// in-flight chunk, which is simply dropped.
var errNotFollowing = errors.New("incremental: monitor is not following (promoted)")

// replicate appends one shipped chunk to the local segment and applies
// it record by record — the follower's only mutation path. It runs under
// the journal mutex, preserving log order == apply order against the
// local rolls; the read-only gate must be up (a promoted monitor refuses
// further chunks, so promotion is a clean cut at a record boundary).
// Each record is re-framed through the local Log, which recomputes an
// identical CRC — the local segment stays byte-identical to the
// primary's prefix, so the shipping cursor IS the local file size.
func (m *Monitor) replicate(chunk []byte) (records int, consumed int64, err error) {
	j := m.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if !m.readOnly.Load() {
		return 0, 0, errNotFollowing
	}
	if err := j.usable(); err != nil {
		return 0, 0, err
	}
	consumed, records, err = wal.ScanRecords(chunk, func(p []byte) error {
		if err := j.log.Append(p); err != nil {
			j.appendErr = err
			return err
		}
		n, err := m.applyRecordN(p)
		if err != nil {
			// The record landed in the local log but not in memory: the
			// two no longer agree — poison, like a live apply failure.
			j.appendErr = err
			return err
		}
		j.records += n
		return nil
	})
	return records, consumed, err
}

// rollTo advances the follower's local generation to the primary's next
// segment number: the in-memory state — exactly the primary's state at
// the closed segment's end, since the same record prefix produced it —
// becomes snap-newSeq, and an empty wal-newSeq starts. After the roll
// the local directory is a self-sufficient recovery image at the new
// cursor, and a crash between any two steps recovers like a primary's
// interrupted rotation.
func (m *Monitor) rollTo(newSeq uint64) error {
	j := m.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if !m.readOnly.Load() {
		// Promotion landed first: the monitor rolls on its own cadence
		// now, not the primary's.
		return errNotFollowing
	}
	if j.closed {
		return errClosed
	}
	if err := j.usable(); err != nil {
		return err
	}
	return j.rollLocked(m, newSeq)
}

// promoteTo lifts the read-only gate under the journal mutex: any
// in-flight replicate chunk finished first, so the flip happens at the
// exact record boundary the follower has applied, and every mutation
// after it journals locally like a primary's. Before the gate lifts the
// new epoch is journaled (an opEpoch record) and synced — the promoted
// segment durably names its term before it can hold a single write, so
// recovery and every shipped chunk carry it. The epoch append is the
// one place a follower's directory legitimately diverges from the old
// primary's: it is the first record of the new history.
func (m *Monitor) promoteTo(epoch uint64) error {
	if m.j == nil {
		if epoch > m.epoch.Load() {
			m.epoch.Store(epoch)
		}
		m.readOnly.Store(false)
		return nil
	}
	j := m.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.usable(); err != nil {
		return err
	}
	if epoch > m.epoch.Load() {
		if err := j.log.Append(encodeEpoch(epoch)); err != nil {
			j.appendErr = err
			return err
		}
		if err := j.log.Sync(); err != nil {
			j.appendErr = err
			return err
		}
		m.epoch.Store(epoch)
	}
	m.readOnly.Store(false)
	return nil
}
