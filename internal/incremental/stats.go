package incremental

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// This file generalizes the sharded group index of index.go beyond CFD
// tableaux: a GroupStats subscription maintains, for arbitrary attribute
// pairs (X → A), the live X-groups of the monitored instance — support
// (member count) and the full A-value distribution — updated from the
// same single ChangeSet apply path every mutation flows through
// (insertLocked/deleteLocked/updateLocked, under the tuple-shard lock).
// Each mutation leaves a coalesced group-delta behind: group created or
// destroyed, support ±, distinct-Y ± all surface as one dirty mark per
// (pair, group) that Drain turns into GroupDelta events. The streaming
// CFD miner in internal/discovery is the canonical subscriber: it
// re-scores exactly the groups a batch touched instead of re-mining the
// instance.
//
// Like the violation indexes, the statistics speak value IDs internally:
// groups are keyed by the packed-ID X-projection and distributions count
// IDs (4 bytes per entry key), with strings materialized through the
// monitor's interner only when a delta or Stat crosses to the caller.

// AttrPair is one tracked statistics pair: the X-groups of the
// projection on X, each with the distribution of its members' A-values.
type AttrPair struct {
	// X is the grouping attribute list (the candidate LHS).
	X []string
	// A is the distributed attribute (the candidate RHS).
	A string
}

// GroupDelta reports that one tracked pair's X-group changed since the
// previous Drain: it was created, gained or lost members (support ±),
// or its A-value distribution shifted (distinct ±). Deltas are
// coalesced per group between drains — a 1000-op batch hitting one
// group yields one delta — and carry the group's state as of the drain.
type GroupDelta struct {
	// Pair indexes the pair within the subscription's TrackGroups order.
	Pair int
	// XKey is the group's identity: an opaque encoding of the
	// X-projection, stable for the life of the subscription and usable
	// with Stat and KeyOf.
	XKey string
	// X is the materialized X-projection; nil when the group was
	// destroyed.
	X []relation.Value
	// Support is the group's member count; 0 reports the group was
	// destroyed.
	Support int
	// Distinct is the number of distinct A-values over the members.
	Distinct int
	// Top and TopCount are the most frequent A-value and its count,
	// filled only when Distinct == 1 (where they cost nothing to read).
	// For mixed groups use Stat, which scans the distribution.
	Top      relation.Value
	TopCount int
}

// GroupStat is a point-in-time view of one X-group's statistics.
type GroupStat struct {
	// X is the materialized X-projection.
	X []relation.Value
	// Support is the group's member count.
	Support int
	// Distinct is the number of distinct A-values over the members.
	Distinct int
	// Top is the most frequent A-value, ties broken toward the smallest
	// value; TopCount is its count.
	Top      relation.Value
	TopCount int
}

// statGroup is the live statistics of one X-group under one tracked
// pair. The overwhelmingly common case — a group whose members agree on
// A — stays allocation-light: the first distinct A-value ID and its
// count live inline and the spill map exists only once a second
// distinct value appears. Invariant: a value is tracked either in the
// inline slot or in rest, never both (the inline slot is matched first
// on every add, so its value never enters rest).
type statGroup struct {
	// key is the stored map key (packed X-projection IDs), kept so a
	// destroyed group can still name itself in its final delta.
	key string
	// x is the X-projection as value IDs (owned by the group, immutable).
	x []uint32
	// size is the member count.
	size int
	// dirty marks membership in the shard's dirty list — a repeat mark
	// is one branch, not a map operation (the fold hot path's dominant
	// cost in profiles).
	dirty bool
	// v0/c0 are the inline first distinct A-value ID and its count;
	// c0 == 0 marks the slot dead (its value fully removed). ID 0 is a
	// valid value, so c0 — never v0 — is what encodes slot liveness.
	v0 uint32
	c0 int
	// rest holds every other distinct A-value ID's count; nil until
	// needed.
	rest map[uint32]int
}

func (g *statGroup) distinct() int {
	n := len(g.rest)
	if g.c0 > 0 {
		n++
	}
	return n
}

func (g *statGroup) add(v uint32) {
	g.size++
	if v == g.v0 && (g.c0 > 0 || len(g.rest) == 0) {
		g.v0, g.c0 = v, g.c0+1
		return
	}
	if g.c0 == 0 && len(g.rest) == 0 {
		g.v0, g.c0 = v, 1
		return
	}
	if c, ok := g.rest[v]; ok {
		g.rest[v] = c + 1
		return
	}
	if g.rest == nil {
		g.rest = make(map[uint32]int, 2)
	}
	g.rest[v] = 1
}

func (g *statGroup) remove(v uint32) {
	g.size--
	if v == g.v0 && g.c0 > 0 {
		g.c0--
		return
	}
	if c := g.rest[v]; c > 1 {
		g.rest[v] = c - 1
	} else {
		delete(g.rest, v)
	}
}

// top returns the most frequent A-value ID and its count, ties broken
// toward the smallest VALUE (not the smallest ID — IDs are assigned by
// interning order, so comparing them would make the winner depend on
// arrival order; the miner's pattern selection needs the value-based
// rule for determinism). O(distinct), with string comparisons only on
// count ties.
func (g *statGroup) top(in *relation.Interner) (best uint32, n int) {
	if g.c0 > 0 {
		best, n = g.v0, g.c0
	}
	for v, c := range g.rest {
		if c > n || (c == n && in.ByID(v) < in.ByID(best)) {
			best, n = v, c
		}
	}
	return best, n
}

// statShard is one lock shard of a pair's group store: the live groups
// keyed by packed X-projection IDs, plus the dirty list — the coalesced
// group-delta log the subscriber drains. A destroyed group leaves the
// map but stays on the list (size 0) until drained.
type statShard struct {
	mu    sync.RWMutex
	m     map[string]*statGroup
	dirty []*statGroup
}

// pairTrack is the resolved, sharded index of one tracked pair.
type pairTrack struct {
	pair   AttrPair
	xIdx   []int
	aIdx   int
	shards []statShard
}

// GroupStats is one live group-statistics subscription over a Monitor,
// created by TrackGroups. All methods are safe for concurrent use and
// run concurrently with monitor mutations; Drain and Stat observe each
// shard at a consistent point, not the whole index.
type GroupStats struct {
	// in is the monitor's value pool; IDs in the index resolve through
	// it when deltas and stats cross to the caller.
	in    *relation.Interner
	pairs []pairTrack
	// byAttr maps an attribute position to the pairs whose X ∪ {A}
	// mentions it — the only pairs an update of that attribute touches.
	byAttr [][]int32
}

// NumPairs returns the number of tracked pairs, in TrackGroups order.
func (h *GroupStats) NumPairs() int { return len(h.pairs) }

// Pair returns one tracked pair by index.
func (h *GroupStats) Pair(i int) AttrPair { return h.pairs[i].pair }

// KeyOf returns the XKey a group with the given X-projection would
// carry — the bridge from caller-side values to GroupDelta.XKey / Stat
// identities.
func (h *GroupStats) KeyOf(x []relation.Value) string {
	ids := make([]uint32, len(x))
	for i, v := range x {
		ids[i] = h.in.ID(v)
	}
	return string(relation.AppendIDKey(nil, ids))
}

// TrackGroups attaches a group-statistics subscription for the given
// attribute pairs and returns its handle. The current instance is
// folded in atomically — every tuple shard is write-locked for the
// duration, briefly quiescing writers — and every subsequent mutation
// updates the statistics inside the same apply path that maintains the
// violation indexes. Every folded group starts dirty, so the first
// Drain hands the subscriber the complete initial state.
//
// The statistics are memory-only: a durable monitor does not journal or
// snapshot them, and a subscription does not survive a restart —
// re-attach after recovery. Close the handle with UntrackGroups.
func (m *Monitor) TrackGroups(pairs []AttrPair) (*GroupStats, error) {
	h := &GroupStats{in: m.vals, byAttr: make([][]int32, m.schema.Len())}
	for pi, p := range pairs {
		xIdx, err := m.schema.Indexes(p.X)
		if err != nil {
			return nil, fmt.Errorf("incremental: tracking pair %d: %w", pi, err)
		}
		aIdx, ok := m.schema.Index(p.A)
		if !ok {
			return nil, fmt.Errorf("incremental: tracking pair %d: schema %q has no attribute %q", pi, m.schema.Name, p.A)
		}
		t := pairTrack{pair: p, xIdx: xIdx, aIdx: aIdx, shards: make([]statShard, m.shards)}
		for si := range t.shards {
			t.shards[si].m = make(map[string]*statGroup)
		}
		h.pairs = append(h.pairs, t)
		for _, ai := range append(append([]int(nil), xIdx...), aIdx) {
			h.byAttr[ai] = append(h.byAttr[ai], int32(pi))
		}
	}

	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	// The fold is one bounded allocation burst that immediately becomes
	// resident state (groups, projections, distributions) — park the
	// collector for its duration, the discipline recovery applies.
	defer pauseGC()()
	// Quiesce writers: every mutation holds its tuple-shard lock, so
	// holding all of them (ascending, the batch path's lock order) makes
	// the fold + install atomic against the apply path.
	for si := range m.tuples {
		m.tuples[si].mu.Lock()
	}
	defer func() {
		for si := range m.tuples {
			m.tuples[si].mu.Unlock()
		}
	}()
	// Fold pair-major: one pair's group maps stay cache-hot across the
	// whole pass instead of touching every pair's maps per tuple. The
	// handle is not published yet and writers are quiesced, so the fold
	// runs without shard locks.
	for pi := range h.pairs {
		p := &h.pairs[pi]
		var stack [64]byte
		for si := range m.tuples {
			for _, t := range m.tuples[si].m {
				sh, key := p.shardFor(stack[:], t)
				p.addLocked(sh, key, t)
			}
		}
	}
	cur := m.stats.Load()
	var next []*GroupStats
	if cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, h)
	m.stats.Store(&next)
	return h, nil
}

// UntrackGroups detaches a subscription; its handle stays readable but
// no longer follows mutations. Unknown handles are ignored.
func (m *Monitor) UntrackGroups(h *GroupStats) {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	cur := m.stats.Load()
	if cur == nil {
		return
	}
	next := make([]*GroupStats, 0, len(*cur))
	for _, o := range *cur {
		if o != h {
			next = append(next, o)
		}
	}
	m.stats.Store(&next)
}

// statsHooks returns the live subscriptions; nil when nobody tracks.
// One atomic load — the whole cost of the feature on an untracked
// monitor's hot path.
func (m *Monitor) statsHooks() []*GroupStats {
	if p := m.stats.Load(); p != nil {
		return *p
	}
	return nil
}

// add folds a stored tuple into every tracked pair. The caller holds
// the tuple's shard lock.
func (h *GroupStats) add(t idTuple) {
	for pi := range h.pairs {
		h.addPair(pi, t)
	}
}

// remove unfolds a departing tuple from every tracked pair.
func (h *GroupStats) remove(t idTuple) {
	for pi := range h.pairs {
		h.removePair(pi, t)
	}
}

// update re-folds an updated tuple under the pairs that mention the
// changed attribute — the others see the same X-projection and A-value
// on both sides and are left alone.
func (h *GroupStats) update(old, next idTuple, ai int) {
	for _, pi := range h.byAttr[ai] {
		h.removePair(int(pi), old)
		h.addPair(int(pi), next)
	}
}

// shardFor packs t's X-projection IDs under pair p into scratch and
// returns the owning shard. The returned key aliases buf. Routing uses
// HashBytes over the packed key, which by the idcol.go invariant equals
// HashIDs of the vector — the same hash Stat derives from an XKey.
func (p *pairTrack) shardFor(buf []byte, t idTuple) (*statShard, []byte) {
	key := buf[:0]
	for _, j := range p.xIdx {
		key = relation.AppendIDKey(key, t[j:j+1])
	}
	return &p.shards[int(relation.HashBytes(key)%uint32(len(p.shards)))], key
}

func (h *GroupStats) addPair(pi int, t idTuple) {
	p := &h.pairs[pi]
	var stack [64]byte
	sh, key := p.shardFor(stack[:], t)
	sh.mu.Lock()
	p.addLocked(sh, key, t)
	sh.mu.Unlock()
}

// addLocked folds one tuple into its group; the caller holds sh's lock
// (or owns the whole index, as the attach fold does).
func (p *pairTrack) addLocked(sh *statShard, key []byte, t idTuple) {
	g, ok := sh.m[string(key)]
	if !ok {
		k := string(key)
		x := make([]uint32, len(p.xIdx))
		for i, j := range p.xIdx {
			x[i] = t[j]
		}
		g = &statGroup{key: k, x: x}
		sh.m[k] = g
	}
	g.add(t[p.aIdx])
	if !g.dirty {
		g.dirty = true
		sh.dirty = append(sh.dirty, g)
	}
}

func (h *GroupStats) removePair(pi int, t idTuple) {
	p := &h.pairs[pi]
	var stack [64]byte
	sh, key := p.shardFor(stack[:], t)
	sh.mu.Lock()
	g, ok := sh.m[string(key)]
	if !ok {
		sh.mu.Unlock()
		return
	}
	g.remove(t[p.aIdx])
	if !g.dirty {
		g.dirty = true
		sh.dirty = append(sh.dirty, g)
	}
	if g.size == 0 {
		// The group leaves the store but stays on the dirty list: its
		// final delta (Support 0) is how the subscriber learns it died.
		delete(sh.m, g.key)
	}
	sh.mu.Unlock()
}

// Drain appends every group-delta accumulated since the previous drain
// to buf and returns it, clearing the dirty sets. Shards are visited
// one at a time, so a concurrent writer never waits longer than one
// shard; each delta carries its group's state as of its shard's visit.
func (h *GroupStats) Drain(buf []GroupDelta) []GroupDelta {
	for pi := range h.pairs {
		p := &h.pairs[pi]
		for si := range p.shards {
			sh := &p.shards[si]
			sh.mu.Lock()
			if len(sh.dirty) == 0 {
				sh.mu.Unlock()
				continue
			}
			for _, g := range sh.dirty {
				g.dirty = false
				d := GroupDelta{Pair: pi, XKey: g.key}
				// A destroyed group (size 0) left the store; its delta
				// reports only the death. A key destroyed and re-created
				// within one window drains as two list entries, old
				// object first, so the subscriber nets out correctly.
				if g.size > 0 {
					d.X = h.in.Materialize(make([]relation.Value, 0, len(g.x)), g.x)
					d.Support, d.Distinct = g.size, g.distinct()
					if d.Distinct == 1 {
						top, n := g.top(h.in)
						d.Top, d.TopCount = h.in.ByID(top), n
					}
				}
				buf = append(buf, d)
			}
			sh.dirty = sh.dirty[:0]
			sh.mu.Unlock()
		}
	}
	return buf
}

// Stat returns the current statistics of one group, including the full
// distribution's top value (an O(distinct) scan — GroupDelta carries
// Top for free only in the single-value case).
func (h *GroupStats) Stat(pair int, xkey string) (GroupStat, bool) {
	p := &h.pairs[pair]
	sh := &p.shards[int(relation.Hash(xkey)%uint32(len(p.shards)))]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	g, ok := sh.m[xkey]
	if !ok {
		return GroupStat{}, false
	}
	top, n := g.top(h.in)
	return GroupStat{
		X:        h.in.Materialize(make([]relation.Value, 0, len(g.x)), g.x),
		Support:  g.size,
		Distinct: g.distinct(),
		Top:      h.in.ByID(top),
		TopCount: n,
	}, true
}

// Count returns the number of members of one group whose A-value equals
// v — the distribution probe a repair planner needs when its target
// value is a pattern constant rather than the group majority. Zero when
// the group (or the value) is unknown.
func (h *GroupStats) Count(pair int, xkey string, v relation.Value) int {
	p := &h.pairs[pair]
	id := h.in.ID(v)
	sh := &p.shards[int(relation.Hash(xkey)%uint32(len(p.shards)))]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	g, ok := sh.m[xkey]
	if !ok {
		return 0
	}
	if g.c0 > 0 && g.v0 == id {
		return g.c0
	}
	return g.rest[id]
}

// statsState is the Monitor-side anchor of the subscriptions.
type statsState struct {
	statsMu sync.Mutex
	stats   atomic.Pointer[[]*GroupStats]
}
