package incremental

import (
	"sort"
	"testing"

	"repro/internal/relation"
)

func statsSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema("R", relation.Attr("AC"), relation.Attr("CT"), relation.Attr("NM"))
}

// drainMap drains the subscription into a map keyed by (pair, xkey) for
// order-independent assertions.
func drainMap(h *GroupStats) map[[2]string]GroupDelta {
	out := make(map[[2]string]GroupDelta)
	for _, d := range h.Drain(nil) {
		out[[2]string{h.Pair(d.Pair).A, d.XKey}] = d
	}
	return out
}

func TestTrackGroupsFoldsExistingInstance(t *testing.T) {
	schema := statsSchema(t)
	rel := relation.New(schema)
	rel.MustInsert("908", "MH", "Mike")
	rel.MustInsert("908", "MH", "Rick")
	rel.MustInsert("908", "NYC", "Eve")
	rel.MustInsert("212", "NYC", "Joe")
	m, err := Load(rel, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.TrackGroups([]AttrPair{{X: []string{"AC"}, A: "CT"}})
	if err != nil {
		t.Fatal(err)
	}
	ds := drainMap(h)
	if len(ds) != 2 {
		t.Fatalf("drained %d deltas, want 2 groups", len(ds))
	}
	k908 := h.KeyOf([]relation.Value{"908"})
	d := ds[[2]string{"CT", k908}]
	if d.Support != 3 || d.Distinct != 2 {
		t.Errorf("908 group = support %d distinct %d, want 3/2", d.Support, d.Distinct)
	}
	st, ok := h.Stat(0, k908)
	if !ok || st.Top != "MH" || st.TopCount != 2 {
		t.Errorf("Stat(908) = %+v ok=%v, want top MH count 2", st, ok)
	}
	k212 := h.KeyOf([]relation.Value{"212"})
	d = ds[[2]string{"CT", k212}]
	if d.Support != 1 || d.Distinct != 1 || d.Top != "NYC" || d.TopCount != 1 {
		t.Errorf("212 group = %+v, want support 1, top NYC", d)
	}
	// A second drain with no mutations is empty.
	if more := h.Drain(nil); len(more) != 0 {
		t.Errorf("idle drain returned %d deltas", len(more))
	}
}

func TestGroupDeltasFollowMutations(t *testing.T) {
	schema := statsSchema(t)
	m, err := New(schema, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.TrackGroups([]AttrPair{{X: []string{"AC"}, A: "CT"}, {X: []string{"CT"}, A: "AC"}})
	if err != nil {
		t.Fatal(err)
	}
	h.Drain(nil)

	key, _, err := m.Insert(relation.Tuple{"908", "MH", "Mike"})
	if err != nil {
		t.Fatal(err)
	}
	ds := drainMap(h)
	k908 := h.KeyOf([]relation.Value{"908"})
	if d := ds[[2]string{"CT", k908}]; d.Support != 1 || d.Distinct != 1 || d.Top != "MH" {
		t.Errorf("after insert: %+v", d)
	}
	if len(ds) != 2 {
		t.Errorf("insert touched %d groups, want one per pair", len(ds))
	}

	// Updating NM touches neither pair: no deltas at all.
	if _, err := m.Update(key, "NM", "Michael"); err != nil {
		t.Fatal(err)
	}
	if ds := h.Drain(nil); len(ds) != 0 {
		t.Errorf("NM update produced %d deltas, want 0", len(ds))
	}

	// Updating CT touches both pairs: the AC group's distribution moves,
	// the old CT group dies and a new one is born.
	if _, err := m.Update(key, "CT", "NYC"); err != nil {
		t.Fatal(err)
	}
	ds = drainMap(h)
	if d := ds[[2]string{"CT", k908}]; d.Support != 1 || d.Top != "NYC" {
		t.Errorf("AC group after CT update: %+v", d)
	}
	kMH := h.KeyOf([]relation.Value{"MH"})
	if d, ok := ds[[2]string{"AC", kMH}]; !ok || d.Support != 0 {
		t.Errorf("old CT group should be reported destroyed, got %+v (ok=%v)", d, ok)
	}
	kNYC := h.KeyOf([]relation.Value{"NYC"})
	if d := ds[[2]string{"AC", kNYC}]; d.Support != 1 || d.Top != "908" {
		t.Errorf("new CT group: %+v", d)
	}

	// Deleting the only member destroys every group.
	if _, err := m.Delete(key); err != nil {
		t.Fatal(err)
	}
	ds = drainMap(h)
	if d := ds[[2]string{"CT", k908}]; d.Support != 0 || d.X != nil {
		t.Errorf("destroyed group delta = %+v, want Support 0", d)
	}
	if _, ok := h.Stat(0, k908); ok {
		t.Error("Stat on a destroyed group must miss")
	}
}

func TestGroupStatsBatchCoalesces(t *testing.T) {
	schema := statsSchema(t)
	m, err := New(schema, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.TrackGroups([]AttrPair{{X: []string{"AC"}, A: "CT"}})
	if err != nil {
		t.Fatal(err)
	}
	var cs ChangeSet
	for i := 0; i < 100; i++ {
		cs.Insert(relation.Tuple{"908", "MH", "x"})
	}
	if _, err := m.Apply(&cs); err != nil {
		t.Fatal(err)
	}
	ds := h.Drain(nil)
	if len(ds) != 1 {
		t.Fatalf("100 same-group ops drained as %d deltas, want 1", len(ds))
	}
	if ds[0].Support != 100 || ds[0].Distinct != 1 || ds[0].TopCount != 100 {
		t.Errorf("coalesced delta = %+v", ds[0])
	}
}

// TestStatGroupDistribution drives the inline-slot/spill-map layout
// through adds and removes, checking distinct and top at every step.
func TestStatGroupDistribution(t *testing.T) {
	in := relation.NewInterner()
	// Intern "b" first so its ID is SMALLER than "a"'s: the value-based
	// tie-break below must still pick "a", proving top compares values,
	// not arrival-ordered IDs.
	b, a := in.ID("b"), in.ID("a")
	g := &statGroup{}
	check := func(wantDistinct int, wantTop relation.Value, wantN int) {
		t.Helper()
		if d := g.distinct(); d != wantDistinct {
			t.Fatalf("distinct = %d, want %d", d, wantDistinct)
		}
		top, n := g.top(in)
		got := relation.Value("")
		if n > 0 {
			got = in.ByID(top)
		}
		if got != wantTop || n != wantN {
			t.Fatalf("top = %q/%d, want %q/%d", got, n, wantTop, wantN)
		}
	}
	g.add(b)
	g.add(b)
	check(1, "b", 2)
	g.add(a)
	check(2, "b", 2) // counts beat values
	g.add(a)
	check(2, "a", 2) // tie broken toward the smaller value
	g.remove(b)
	g.remove(b) // inline slot dies, spill survives
	check(1, "a", 2)
	g.add(b) // dead slot's value re-enters via the spill map
	check(2, "a", 2)
	g.remove(a)
	g.remove(a)
	check(1, "b", 1)
	if g.size != 1 {
		t.Fatalf("size = %d, want 1", g.size)
	}
	g.remove(b)
	check(0, "", 0)
}

func TestTrackGroupsValidation(t *testing.T) {
	m, err := New(statsSchema(t), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrackGroups([]AttrPair{{X: []string{"nope"}, A: "CT"}}); err == nil {
		t.Error("unknown X attribute must be rejected")
	}
	if _, err := m.TrackGroups([]AttrPair{{X: []string{"AC"}, A: "nope"}}); err == nil {
		t.Error("unknown A attribute must be rejected")
	}
}

func TestUntrackGroupsStopsUpdates(t *testing.T) {
	m, err := New(statsSchema(t), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.TrackGroups([]AttrPair{{X: []string{"AC"}, A: "CT"}})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := m.TrackGroups([]AttrPair{{X: []string{"CT"}, A: "AC"}})
	if err != nil {
		t.Fatal(err)
	}
	m.UntrackGroups(h)
	if _, _, err := m.Insert(relation.Tuple{"908", "MH", "Mike"}); err != nil {
		t.Fatal(err)
	}
	if ds := h.Drain(nil); len(ds) != 0 {
		t.Errorf("untracked subscription drained %d deltas", len(ds))
	}
	if ds := h2.Drain(nil); len(ds) != 1 {
		t.Errorf("surviving subscription drained %d deltas, want 1", len(ds))
	}
}

// TestMultiAttrPairKeys: a two-attribute X routes and keys correctly.
func TestMultiAttrPairKeys(t *testing.T) {
	m, err := New(statsSchema(t), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.TrackGroups([]AttrPair{{X: []string{"AC", "CT"}, A: "NM"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, nm := range []string{"Mike", "Rick"} {
		if _, _, err := m.Insert(relation.Tuple{"908", "MH", nm}); err != nil {
			t.Fatal(err)
		}
	}
	ds := h.Drain(nil)
	if len(ds) != 1 {
		t.Fatalf("drained %d deltas, want 1", len(ds))
	}
	want := h.KeyOf([]relation.Value{"908", "MH"})
	if ds[0].XKey != want || ds[0].Support != 2 || ds[0].Distinct != 2 {
		t.Errorf("delta = %+v, want key %q support 2 distinct 2", ds[0], want)
	}
	xs := append([]relation.Value(nil), ds[0].X...)
	sort.Strings(xs)
	if len(xs) != 2 || xs[0] != "908" || xs[1] != "MH" {
		t.Errorf("X = %v", ds[0].X)
	}
}
