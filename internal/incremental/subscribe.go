package incremental

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/relation"
)

// This file is the violation view's subscription surface: a DeltaSub is
// a coalesced log of which live violations a stretch of applied batches
// touched, folded by the same foldView pass that maintains the view
// base — O(Δ) per batch, one dirty mark per violation between drains.
// The streaming repair Suggester in internal/repair is the canonical
// subscriber: it re-plans exactly the suggestions whose violations a
// batch touched instead of re-detecting the instance.

// TouchedCFD is one CFD's touched violations since the previous Drain:
// constant violations by tuple key, variable violations by the group's
// X-projection. "Touched" means the violation appeared, retired, or
// flip-flopped — the subscriber re-reads the authoritative state to
// learn which; a key listed here may no longer be violating.
type TouchedCFD struct {
	Consts []int64
	Vars   [][]relation.Value
}

// Empty reports whether nothing was touched.
func (t *TouchedCFD) Empty() bool { return len(t.Consts) == 0 && len(t.Vars) == 0 }

// DeltaSub is one live violation-delta subscription over a Monitor,
// created by TrackDeltas. Folding happens inside the apply path's view
// fold; Drain is safe to call concurrently with mutations.
type DeltaSub struct {
	mu   sync.Mutex
	cfds []touchSet
	n    int
}

// touchSet is one CFD's accumulated touch marks.
type touchSet struct {
	consts map[int64]struct{}
	vars   map[string][]relation.Value
}

// fold marks every violation the delta names as touched. Called from
// foldView with the view mutex held; takes the sub's own mutex so Drain
// can run concurrently.
func (s *DeltaSub) fold(d *Delta) {
	s.mu.Lock()
	for _, c := range d.Added {
		s.mark(c)
	}
	for _, c := range d.Removed {
		s.mark(c)
	}
	s.mu.Unlock()
}

func (s *DeltaSub) mark(c Change) {
	t := &s.cfds[c.CFD]
	if c.Kind == core.ConstViolation {
		if _, ok := t.consts[c.Tuple]; !ok {
			t.consts[c.Tuple] = struct{}{}
			s.n++
		}
		return
	}
	k := relation.EncodeKey(c.Key)
	if _, ok := t.vars[k]; !ok {
		// Delta keys are materialized fresh per delta; retaining the
		// slice is safe (same invariant the view base relies on).
		t.vars[k] = c.Key
		s.n++
	}
}

// markAll marks every currently-live violation in the view base as
// touched — the seed at attach time and the recovery-rebuild path.
// The caller holds the view mutex.
func (s *DeltaSub) markAll(base []viewBase) {
	s.mu.Lock()
	for ci := range base {
		b := &base[ci]
		t := &s.cfds[ci]
		for k, n := range b.consts {
			if n <= 0 {
				continue
			}
			if _, ok := t.consts[k]; !ok {
				t.consts[k] = struct{}{}
				s.n++
			}
		}
		for k, vc := range b.vars {
			if vc.n <= 0 {
				continue
			}
			if _, ok := t.vars[k]; !ok {
				t.vars[k] = vc.xs
				s.n++
			}
		}
	}
	s.mu.Unlock()
}

// Drain returns the violations touched since the previous drain, one
// entry per monitored CFD (positionally aligned with Σ), and resets the
// marks. A nil result means nothing was touched — the cheap poll path.
func (s *DeltaSub) Drain() []TouchedCFD {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return nil
	}
	out := make([]TouchedCFD, len(s.cfds))
	for ci := range s.cfds {
		t := &s.cfds[ci]
		if len(t.consts) > 0 {
			out[ci].Consts = make([]int64, 0, len(t.consts))
			for k := range t.consts {
				out[ci].Consts = append(out[ci].Consts, k)
			}
			t.consts = make(map[int64]struct{})
		}
		if len(t.vars) > 0 {
			out[ci].Vars = make([][]relation.Value, 0, len(t.vars))
			for _, xs := range t.vars {
				out[ci].Vars = append(out[ci].Vars, xs)
			}
			t.vars = make(map[string][]relation.Value)
		}
	}
	s.n = 0
	return out
}

// TrackDeltas attaches a violation-delta subscription: every violation
// currently live is pre-marked as touched (so the first Drain hands the
// subscriber the complete initial set), and every subsequent applied
// batch marks the violations its delta names. Like group statistics,
// subscriptions are memory-only and do not survive a restart. Detach
// with UntrackDeltas.
func (m *Monitor) TrackDeltas() *DeltaSub {
	s := &DeltaSub{cfds: make([]touchSet, len(m.cfds))}
	for i := range s.cfds {
		s.cfds[i].consts = make(map[int64]struct{})
		s.cfds[i].vars = make(map[string][]relation.Value)
	}
	v := &m.view
	v.mu.Lock()
	s.markAll(v.base)
	v.subs = append(v.subs, s)
	v.mu.Unlock()
	return s
}

// UntrackDeltas detaches a subscription; its accumulated marks stay
// drainable but no longer follow mutations. Unknown handles are ignored.
func (m *Monitor) UntrackDeltas(s *DeltaSub) {
	v := &m.view
	v.mu.Lock()
	next := v.subs[:0]
	for _, o := range v.subs {
		if o != s {
			next = append(next, o)
		}
	}
	v.subs = next
	v.mu.Unlock()
}

// ViolatingGroup reports whether CFD ci currently has a variable
// violation on the X-group with the given projection — a point probe
// against the authoritative group index, one shard lock, no view
// materialization.
func (m *Monitor) ViolatingGroup(ci int, x []relation.Value) bool {
	if ci < 0 || ci >= len(m.cfds) {
		return false
	}
	cs := m.cfds[ci]
	if cs.violations.Load() == 0 || len(x) != len(cs.xIdx) {
		return false
	}
	ids := make([]uint32, len(x))
	for i, v := range x {
		ids[i] = m.vals.ID(v)
	}
	key := relation.AppendIDKey(nil, ids)
	gsh := &cs.groups[int(relation.HashIDs(ids)%uint32(m.shards))]
	gsh.mu.RLock()
	g := gsh.m[string(key)]
	ok := g != nil && g.violating()
	gsh.mu.RUnlock()
	return ok
}

// MatchingKeys returns the keys of live tuples whose projection on
// attrs equals x, in ascending key order — the group-membership probe
// the repair engine uses to materialize a group-level suggestion into
// concrete cell edits. A full shard scan with integer compares:
// O(|I|), intended for the (rare, human-paced) apply path, not the
// per-batch refresh path.
func (m *Monitor) MatchingKeys(attrs []string, x []relation.Value) ([]int64, error) {
	idx, err := m.schema.Indexes(attrs)
	if err != nil {
		return nil, err
	}
	if len(x) != len(idx) {
		return nil, fmt.Errorf("incremental: MatchingKeys: %d attrs, %d values", len(idx), len(x))
	}
	ids := make([]uint32, len(x))
	for i, v := range x {
		ids[i] = m.vals.ID(v)
	}
	var out []int64
	for si := range m.tuples {
		sh := &m.tuples[si]
		sh.mu.RLock()
		for k, t := range sh.m {
			match := true
			for i, j := range idx {
				if t[j] != ids[i] {
					match = false
					break
				}
			}
			if match {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
