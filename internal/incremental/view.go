package incremental

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
)

// This file is the read path's counterpart to the batched write path: a
// live materialized violation view, maintained in O(Δ) from the same
// deltas Apply returns, and published as an immutable atomically-swapped
// snapshot (ViolationsView).
//
// The write path already computes exactly which violations appear and
// retire per batch; foldView folds that delta into per-CFD refcount maps
// (the "base"). Refcounts — not booleans — because concurrent memory-path
// batches fold in whichever order they finish, which may differ from the
// order their shard-level transitions actually happened: counts commute
// under any fold order (a count may be transiently negative), and
// presence is simply count > 0 once the folds of all completed batches
// are in. The view version bumps only when a fold flips presence, so
// flip-flop batches (a group leaving and re-entering violation) keep the
// version — and the ETags derived from it — stable.
//
// Publication is copy-on-write: the canonical *State is rebuilt lazily,
// at most once per version, by the first reader that sees a stale
// pointer; only the CFDs dirtied since the previous build are
// re-canonicalized, clean ones share the prior view's slices. Repeat
// readers at an unchanged version pay one atomic pointer load — no shard
// locks, no allocation, ever. ScanViolations (the old full scan) remains
// as the from-scratch oracle the property tests compare against.

// ViolationsView is one immutable published snapshot of the live
// violation set. Views are shared: State returns interior slices that
// must be treated as read-only.
type ViolationsView struct {
	version uint64
	built   time.Time
	state   *State
}

// Version is the violation-set version this view materializes. It
// advances only when the violation set actually changes, so it doubles
// as an ETag: a poller holding version v skips re-fetching while
// ViewVersion still reports v.
func (v *ViolationsView) Version() uint64 { return v.version }

// Built is the time this view was materialized.
func (v *ViolationsView) Built() time.Time { return v.built }

// State returns the canonical violation snapshot, in the same shape the
// full scan produces. Shared and immutable — callers must not modify it.
func (v *ViolationsView) State() *State { return v.state }

// varCount is one variable-violation group's refcount entry.
type varCount struct {
	xs []relation.Value
	n  int
}

// viewBase is one CFD's maintained fold state: refcounts keyed the same
// way the canonical snapshot is (const violations by tuple key, variable
// violations by encoded X-projection).
type viewBase struct {
	consts map[int64]int
	vars   map[string]*varCount
}

// empty reports whether the base holds no entries at all — the
// zero-violation fast path that skips canonicalization allocation.
func (b *viewBase) empty() bool { return len(b.consts) == 0 && len(b.vars) == 0 }

// canonical materializes one CFD's canonical violation set from its
// refcounts.
func (b *viewBase) canonical() CFDViolations {
	if b.empty() {
		return CFDViolations{}
	}
	consts := make([]int64, 0, len(b.consts))
	for k, n := range b.consts {
		if n > 0 {
			consts = append(consts, k)
		}
	}
	vars := make(map[string][]relation.Value, len(b.vars))
	for k, vc := range b.vars {
		if vc.n > 0 {
			vars[k] = vc.xs
		}
	}
	return canonicalizeState(consts, vars)
}

// viewState anchors the Monitor's maintained view: the fold maps, the
// version counter, and the published pointer. mu guards base, dirty and
// version writes; the published pointer and version reads are lock-free.
type viewState struct {
	mu      sync.Mutex
	version atomic.Uint64
	cur     atomic.Pointer[ViolationsView]
	base    []viewBase
	dirty   []bool
	// subs are the attached violation-delta subscriptions (subscribe.go),
	// folded alongside the base so subscribers see exactly the violations
	// each batch touched. Guarded by mu, like the base.
	subs []*DeltaSub
}

func (v *viewState) init(ncfds int) {
	v.base = make([]viewBase, ncfds)
	v.dirty = make([]bool, ncfds)
	for i := range v.base {
		v.base[i].consts = make(map[int64]int)
		v.base[i].vars = make(map[string]*varCount)
	}
}

// fold applies one change with the given sign and reports whether it
// flipped the violation's presence.
func (v *viewState) fold(c Change, sign int) bool {
	b := &v.base[c.CFD]
	if c.Kind == core.ConstViolation {
		old := b.consts[c.Tuple]
		n := old + sign
		if n == 0 {
			delete(b.consts, c.Tuple)
		} else {
			b.consts[c.Tuple] = n
		}
		return (old > 0) != (n > 0)
	}
	k := relation.EncodeKey(c.Key)
	vc := b.vars[k]
	if vc == nil {
		// Delta keys are materialized fresh per delta, so retaining the
		// slice is safe.
		vc = &varCount{xs: c.Key}
		b.vars[k] = vc
	}
	old := vc.n
	vc.n += sign
	if vc.n == 0 {
		delete(b.vars, k)
	}
	return (old > 0) != (vc.n > 0)
}

// foldView folds one applied delta into the maintained view base —
// O(len(delta)), called once per applied batch (and per replayed
// record). The version bumps only if some presence actually flipped.
func (m *Monitor) foldView(d *Delta) {
	if d == nil || (len(d.Added) == 0 && len(d.Removed) == 0) {
		return
	}
	v := &m.view
	v.mu.Lock()
	changed := false
	for _, c := range d.Added {
		if v.fold(c, 1) {
			v.dirty[c.CFD] = true
			changed = true
		}
	}
	for _, c := range d.Removed {
		if v.fold(c, -1) {
			v.dirty[c.CFD] = true
			changed = true
		}
	}
	if changed {
		v.version.Add(1)
	}
	for _, s := range v.subs {
		s.fold(d)
	}
	v.mu.Unlock()
}

// rebuildViewBase reseeds the fold maps from a full shard scan — the
// recovery path, where readSnapshot filled the stores directly without
// producing deltas. WAL-tail replay folds on top of this base.
func (m *Monitor) rebuildViewBase() {
	v := &m.view
	v.mu.Lock()
	defer v.mu.Unlock()
	for ci, cs := range m.cfds {
		b := &v.base[ci]
		b.consts = make(map[int64]int)
		b.vars = make(map[string]*varCount)
		v.dirty[ci] = true
		if cs.violations.Load() == 0 {
			continue
		}
		for si := range cs.consts {
			sh := &cs.consts[si]
			sh.mu.RLock()
			for k := range sh.m {
				b.consts[k] = 1
			}
			sh.mu.RUnlock()
		}
		for si := range cs.groups {
			sh := &cs.groups[si]
			sh.mu.RLock()
			for _, g := range sh.m {
				if g.violating() {
					xs := m.vals.Materialize(make([]relation.Value, 0, len(g.xids)), g.xids)
					b.vars[relation.EncodeKey(xs)] = &varCount{xs: xs, n: 1}
				}
			}
			sh.mu.RUnlock()
		}
	}
	v.version.Add(1)
	// A rebuilt base invalidates whatever the subscribers believed: every
	// live violation counts as touched again.
	for _, s := range v.subs {
		s.markAll(v.base)
	}
}

// ViewVersion returns the current violation-set version without
// materializing anything — what a conditional read (If-None-Match)
// compares against before deciding whether to touch the view at all.
func (m *Monitor) ViewVersion() uint64 { return m.view.version.Load() }

// View returns the current violation view. The fast path — any repeat
// read at an unchanged version — is one atomic pointer load; after a
// change, the first reader rebuilds, re-canonicalizing only the CFDs
// whose violation sets moved and sharing the rest from the prior view.
func (m *Monitor) View() *ViolationsView {
	v := &m.view
	if cur := v.cur.Load(); cur != nil && cur.version == v.version.Load() {
		return cur
	}
	return m.rebuildView()
}

func (m *Monitor) rebuildView() *ViolationsView {
	v := &m.view
	v.mu.Lock()
	defer v.mu.Unlock()
	version := v.version.Load()
	prev := v.cur.Load()
	if prev != nil && prev.version == version {
		// Raced with another reader's rebuild.
		return prev
	}
	st := &State{PerCFD: make([]CFDViolations, len(v.base))}
	for ci := range v.base {
		if prev != nil && !v.dirty[ci] {
			st.PerCFD[ci] = prev.state.PerCFD[ci]
			continue
		}
		st.PerCFD[ci] = v.base[ci].canonical()
		v.dirty[ci] = false
	}
	next := &ViolationsView{version: version, built: time.Now(), state: st}
	v.cur.Store(next)
	if m.met != nil {
		m.met.viewRebuilds.Inc()
	}
	return next
}

// Violations returns the live violation set as a shared immutable
// snapshot — the maintained view, a pointer load for repeat readers.
// Callers must not modify the result; ScanViolations materializes a
// private copy from the shards instead.
func (m *Monitor) Violations() *State { return m.View().State() }

// ViolationsFor reports the violations the live tuple with the given key
// currently participates in: a point probe against the authoritative
// shard state — O(|Σ|) with one shard lock per probe, no view
// materialization. The result uses the same canonical per-CFD shape as a
// full snapshot: the tuple's key under ConstTuples when it constant-
// violates, its group's X-projection under VariableKeys when the group
// it belongs to is in conflict. The second result is false when no live
// tuple holds the key.
func (m *Monitor) ViolationsFor(key int64) (*State, bool) {
	tsh := &m.tuples[shardOfTuple(key, m.shards)]
	tsh.mu.RLock()
	t, ok := tsh.m[key]
	tsh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	// t is safe to read unlocked from here: stored ID vectors are
	// immutable (updateLocked swaps in a fresh slice).
	st := &State{PerCFD: make([]CFDViolations, len(m.cfds))}
	var x []uint32
	var keyBuf []byte
	for ci, cs := range m.cfds {
		if cs.violations.Load() == 0 {
			continue
		}
		csh := &cs.consts[shardOfTuple(key, m.shards)]
		csh.mu.RLock()
		isConst := csh.m[key]
		csh.mu.RUnlock()
		if isConst {
			st.PerCFD[ci].ConstTuples = []int64{key}
		}
		x = projectIDs(x[:0], t, cs.xIdx)
		xh := relation.HashIDs(x)
		keyBuf = relation.AppendIDKey(keyBuf[:0], x)
		gsh := &cs.groups[int(xh%uint32(m.shards))]
		gsh.mu.RLock()
		var xs []relation.Value
		if g := gsh.m[string(keyBuf)]; g != nil && g.violating() {
			xs = m.vals.Materialize(make([]relation.Value, 0, len(g.xids)), g.xids)
		}
		gsh.mu.RUnlock()
		if xs != nil {
			st.PerCFD[ci].VariableKeys = [][]relation.Value{xs}
		}
	}
	return st, true
}
