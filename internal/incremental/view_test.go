package incremental_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/incremental"
	"repro/internal/relation"
)

// TestViewMatchesScanUnderRandomStreams drives the same randomized
// scenarios as the delta property test and, after every step, checks the
// O(Δ)-maintained violation view against a from-scratch scan of the
// stores. Every tenth step is a flip-flop batch — one ChangeSet that
// moves a tuple out of its group and straight back — so the view's
// refcount fold sees add/remove churn that nets to nothing and the test
// catches any version bump or state drift such churn would leak.
func TestViewMatchesScanUnderRandomStreams(t *testing.T) {
	for _, cfg := range streamConfigs(t) {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(cfg.seed + 7))
			m, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			mirror := make(map[int64]relation.Tuple)
			var keys []int64
			randomTuple := func() relation.Tuple {
				tp := make(relation.Tuple, cfg.schema.Len())
				for i := range tp {
					pool := cfg.pools[i]
					tp[i] = pool[rng.Intn(len(pool))]
				}
				return tp
			}
			prevVer := m.ViewVersion()
			prevState := m.Violations()
			steps := cfg.steps * soakFactor()
			for step := 0; step < steps; step++ {
				op := rng.Float64()
				switch {
				case len(keys) == 0 || (op < 0.40 && len(keys) < 80):
					tp := randomTuple()
					key, _, err := m.Insert(tp)
					if err != nil {
						t.Fatalf("step %d: insert: %v", step, err)
					}
					mirror[key] = tp.Clone()
					keys = append(keys, key)
				case op < 0.55:
					i := rng.Intn(len(keys))
					key := keys[i]
					if _, err := m.Delete(key); err != nil {
						t.Fatalf("step %d: delete %d: %v", step, key, err)
					}
					delete(mirror, key)
					keys = append(keys[:i], keys[i+1:]...)
				case op < 0.65:
					// Flip-flop: out of the group and back in one batch.
					key := keys[rng.Intn(len(keys))]
					ai := rng.Intn(cfg.schema.Len())
					attr := cfg.schema.Attrs[ai].Name
					orig := mirror[key][ai]
					other := cfg.pools[ai][rng.Intn(len(cfg.pools[ai]))]
					var cs incremental.ChangeSet
					cs.Update(key, attr, other)
					cs.Update(key, attr, orig)
					if _, err := m.Apply(&cs); err != nil {
						t.Fatalf("step %d: flip-flop %d.%s: %v", step, key, attr, err)
					}
				default:
					key := keys[rng.Intn(len(keys))]
					ai := rng.Intn(cfg.schema.Len())
					attr := cfg.schema.Attrs[ai].Name
					val := cfg.pools[ai][rng.Intn(len(cfg.pools[ai]))]
					if _, err := m.Update(key, attr, val); err != nil {
						t.Fatalf("step %d: update %d.%s=%s: %v", step, key, attr, val, err)
					}
					mirror[key][ai] = val
				}

				got := m.Violations()
				want := m.ScanViolations()
				if !got.Equal(want) {
					t.Fatalf("step %d: view diverges from scan:\nview:\n%s\nscan:\n%s",
						step, describe(got), describe(want))
				}
				// The ETag contract: an unchanged version must mean an
				// unchanged violation set.
				if ver := m.ViewVersion(); ver == prevVer {
					if !got.Equal(prevState) {
						t.Fatalf("step %d: violation set changed but view version stayed %d", step, ver)
					}
				} else {
					prevVer, prevState = ver, got
				}

				// Point lookups agree with the full view for a sampled key.
				if len(keys) > 0 {
					key := keys[rng.Intn(len(keys))]
					per, ok := m.ViolationsFor(key)
					inView := false
					for ci := range got.PerCFD {
						for _, k := range got.PerCFD[ci].ConstTuples {
							if k == key {
								inView = true
							}
						}
					}
					if !ok {
						t.Fatalf("step %d: ViolationsFor(%d) reports a live key absent", step, key)
					}
					if !inView && per.Total() > 0 {
						hasConst := false
						for ci := range per.PerCFD {
							if len(per.PerCFD[ci].ConstTuples) > 0 {
								hasConst = true
							}
						}
						if hasConst {
							t.Fatalf("step %d: ViolationsFor(%d) reports a const violation the view lacks", step, key)
						}
					}
					if inView {
						hasConst := false
						for ci := range per.PerCFD {
							if len(per.PerCFD[ci].ConstTuples) > 0 {
								hasConst = true
							}
						}
						if !hasConst {
							t.Fatalf("step %d: key %d violates in view but ViolationsFor misses it", step, key)
						}
					}
				}
			}
		})
	}
}

// TestViewConcurrentReadersWriters hammers the view from reader
// goroutines while writers mutate disjoint key stripes — the shape the
// lock-free read path exists for. Run under -race this doubles as the
// data-race proof; the final state check proves the folds landed exactly
// once each despite the interleaving.
func TestViewConcurrentReadersWriters(t *testing.T) {
	cfg := streamConfigs(t)[0]
	m, err := incremental.New(cfg.schema, cfg.sigma, incremental.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const tuples = 64
	rng := rand.New(rand.NewSource(99))
	keys := make([]int64, 0, tuples)
	for i := 0; i < tuples; i++ {
		tp := make(relation.Tuple, cfg.schema.Len())
		for a := range tp {
			tp[a] = cfg.pools[a][rng.Intn(len(cfg.pools[a]))]
		}
		key, _, err := m.Insert(tp)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}

	const (
		writers = 4
		readers = 4
	)
	opsPerWriter := 500 * soakFactor()
	var (
		writerWG sync.WaitGroup
		readerWG sync.WaitGroup
		stop     atomic.Bool
		errs     = make([]error, writers)
	)
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < opsPerWriter; i++ {
				key := keys[(w+i*writers)%len(keys)]
				ai := rng.Intn(cfg.schema.Len())
				attr := cfg.schema.Attrs[ai].Name
				val := cfg.pools[ai][rng.Intn(len(cfg.pools[ai]))]
				if _, err := m.Update(key, attr, val); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	var readerFail atomic.Value
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			var lastVer uint64
			for !stop.Load() {
				st := m.Violations()
				// Touch every slice so the race detector sees the reads.
				n := 0
				for ci := range st.PerCFD {
					n += len(st.PerCFD[ci].ConstTuples) + len(st.PerCFD[ci].VariableKeys)
				}
				_ = n
				if ver := m.ViewVersion(); ver < lastVer {
					readerFail.Store("view version went backwards")
					return
				} else {
					lastVer = ver
				}
				if _, ok := m.ViolationsFor(keys[r%len(keys)]); ok {
					_ = ok
				}
			}
		}(r)
	}
	// Readers run for the writers' whole lifetime, then drain.
	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if msg := readerFail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if got, want := m.Violations(), m.ScanViolations(); !got.Equal(want) {
		t.Fatalf("after concurrent load the view diverges from scan:\nview:\n%s\nscan:\n%s",
			describe(got), describe(want))
	}
}
