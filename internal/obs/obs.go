// Package obs is the zero-dependency observability core: atomic
// counters, gauges, and lock-free power-of-two-bucket histograms,
// collected in registries that render themselves in Prometheus text
// exposition format.
//
// The design optimizes for the instrumented side, not the scrape side.
// Updating a metric is a handful of atomic adds — no locks, no
// allocations, no map lookups — so handles can sit directly on hot
// paths (the Monitor's apply pipeline observes four timers per batch).
// Scrapes walk the registry under a mutex and read each atomic once;
// a scrape racing a write may see a bucket count that is one update
// ahead of the total, which is harmless for monitoring and keeps the
// write path free.
//
// Every handle type tolerates a nil receiver: a nil *Counter,
// *Gauge, or *Histogram is a valid no-op. The Disabled registry hands
// out nil handles from every constructor, so "metrics off" needs no
// second code path — instrumented code holds the same fields and the
// no-op costs one predictable branch.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil *Counter is a valid no-op handle.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reports the current count; 0 on a nil handle.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil *Gauge is a valid no-op handle.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value reports the current value; 0 on a nil handle.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per possible bit length of a uint64 (0..64).
// Bucket 0 holds the value 0; bucket i>=1 holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a fixed-layout histogram over uint64 values with
// power-of-two bucket boundaries: observing v increments the bucket at
// index bits.Len64(v). That gives ~2x resolution across the full range
// of a uint64 with no configuration, no allocation, and an O(1)
// lock-free Observe — exactly what a nanosecond-latency or byte-size
// distribution needs. The zero value is ready to use; a nil *Histogram
// is a valid no-op handle.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value in raw units.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// ObserveDuration records a duration as nanoseconds (negative clamps
// to zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.ObserveDuration(time.Since(start))
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observed values in raw units.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// load snapshots the bucket counts. total is the sum of the buckets,
// which under concurrent writes may differ transiently from Count().
func (h *Histogram) load() (counts [histBuckets]uint64, total uint64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Quantile estimates the q-quantile (0..1) of the observed values in
// raw units, interpolating linearly inside the winning bucket. With
// power-of-two buckets the estimate is within 2x of the true value,
// which is the right fidelity for p50/p95/p99 latency readouts. It
// reports 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, total := h.load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum < rank {
			continue
		}
		if i == 0 {
			return 0
		}
		lo := math.Ldexp(1, i-1)
		hi := math.Ldexp(1, i)
		frac := float64(rank-(cum-c)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return math.Ldexp(1, histBuckets-1) // unreachable
}
