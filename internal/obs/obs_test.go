package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	h.ObserveDuration(time.Millisecond)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", q)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	var h Histogram
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1: [1,2)
	h.Observe(5) // bucket 3: [4,8)
	h.Observe(5)
	if h.Count() != 4 || h.Sum() != 11 {
		t.Fatalf("count=%d sum=%d, want 4/11", h.Count(), h.Sum())
	}
	counts, total := h.load()
	if total != 4 {
		t.Fatalf("bucket total = %d, want 4", total)
	}
	for i, want := range map[int]uint64{0: 1, 1: 1, 3: 2} {
		if counts[i] != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, counts[i], want)
		}
	}

	// Uniform 1..1000: the median estimate must land within its
	// power-of-two bucket's 2x bound of 500.
	var u Histogram
	for v := uint64(1); v <= 1000; v++ {
		u.Observe(v)
	}
	p50 := u.Quantile(0.5)
	if p50 < 256 || p50 > 1024 {
		t.Fatalf("p50 = %v, want within [256,1024]", p50)
	}
	p99 := u.Quantile(0.99)
	if p99 < 512 || p99 > 1024 {
		t.Fatalf("p99 = %v, want within [512,1024]", p99)
	}
	if q := u.Quantile(0); q > u.Quantile(1) {
		t.Fatalf("quantiles not ordered: q0=%v q1=%v", q, u.Quantile(1))
	}
}

func TestHistogramHugeValue(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxUint64)
	counts, total := h.load()
	if total != 1 || counts[64] != 1 {
		t.Fatalf("max value must land in the top bucket, got total=%d top=%d", total, counts[64])
	}
	if q := h.Quantile(0.5); q <= 0 {
		t.Fatalf("quantile of top bucket = %v, want > 0", q)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("op", "insert"))
	b := r.Counter("x_total", "other help", L("op", "insert"))
	if a != b {
		t.Fatal("same name+labels must return the same handle")
	}
	if c := r.Counter("x_total", "help", L("op", "delete")); c == a {
		t.Fatal("different labels must return a distinct handle")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a different type must panic")
		}
	}()
	r.Gauge("x_total", "help", L("op", "insert"))
}

func TestRegistryTypeScaleMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", "raw units")
	defer func() {
		if recover() == nil {
			t.Fatal("raw histogram re-registered as duration histogram must panic")
		}
	}()
	r.DurationHistogram("h", "seconds")
}

func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("gf", "help", func() float64 { return 1 })
	r.GaugeFunc("gf", "help", func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "gf 2\n") {
		t.Fatalf("re-registered gauge func must win, got:\n%s", sb.String())
	}
}

func TestDisabledRegistry(t *testing.T) {
	r := Disabled()
	if c := r.Counter("c_total", "h"); c != nil {
		t.Fatal("disabled registry must hand out nil counters")
	}
	if g := r.Gauge("g", "h"); g != nil {
		t.Fatal("disabled registry must hand out nil gauges")
	}
	if h := r.Histogram("h", "h"); h != nil {
		t.Fatal("disabled registry must hand out nil histograms")
	}
	if h := r.DurationHistogram("d", "h"); h != nil {
		t.Fatal("disabled registry must hand out nil duration histograms")
	}
	r.GaugeFunc("gf", "h", func() float64 { return 1 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("disabled registry scrape must be empty, got %q", sb.String())
	}
	var nilReg *Registry
	if !nilReg.IsDisabled() {
		t.Fatal("nil registry must report disabled")
	}
}
