package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4). Series are sorted by family name
// then label set, so output is deterministic for a fixed set of values;
// each family gets one HELP/TYPE header. Histograms are exposed with
// cumulative `le` buckets (upper bound 2^i−1 in scaled units — the
// largest value bucket i can hold), a `_sum`, and a `_count`; trailing
// empty buckets are elided and `+Inf` closes the series.
//
// Scraping is safe under concurrent metric updates: each atomic is read
// once and cumulative bucket counts are computed from that snapshot, so
// bucket monotonicity holds by construction.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r.IsDisabled() {
		return nil
	}
	r.mu.Lock()
	ms := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labels < ms[j].labels
	})
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, m := range ms {
		if m.name != lastName {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, escapeHelp(m.help))
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
			lastName = m.name
		}
		switch m.kind {
		case kindCounter:
			writeSeries(bw, m.name, "", m.labels, "", formatFloat(float64(m.c.Value())))
		case kindGauge:
			writeSeries(bw, m.name, "", m.labels, "", formatFloat(float64(m.g.Value())))
		case kindGaugeFunc:
			writeSeries(bw, m.name, "", m.labels, "", formatFloat(m.callFn()))
		case kindHistogram:
			writeHistogram(bw, m)
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, m *metric) {
	counts, total := m.h.load()
	maxIdx := 0
	for i, c := range counts {
		if c > 0 {
			maxIdx = i
		}
	}
	var cum uint64
	for i := 0; i <= maxIdx; i++ {
		cum += counts[i]
		// Bucket i holds integer values < 2^i, so the inclusive upper
		// bound is 2^i − 1 (0, 1, 3, 7, ... in raw units).
		le := (math.Ldexp(1, i) - 1) / m.den
		writeSeries(bw, m.name, "_bucket", m.labels, `le="`+formatFloat(le)+`"`, strconv.FormatUint(cum, 10))
	}
	writeSeries(bw, m.name, "_bucket", m.labels, `le="+Inf"`, strconv.FormatUint(total, 10))
	writeSeries(bw, m.name, "_sum", m.labels, "", formatFloat(float64(m.h.Sum())/m.den))
	writeSeries(bw, m.name, "_count", m.labels, "", strconv.FormatUint(total, 10))
}

// writeSeries emits one sample line, merging the metric's pre-rendered
// labels with an optional extra label (the histogram `le`).
func writeSeries(bw *bufio.Writer, name, suffix, labels, extra, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
