package obs

import (
	"flag"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with every metric kind and fixed
// values, so its exposition output is fully deterministic.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("demo_ops_total", "Operations applied, by kind.", L("op", "insert")).Add(5)
	r.Counter("demo_ops_total", "Operations applied, by kind.", L("op", "delete")).Add(3)
	r.Counter("demo_plain_total", "A label-free counter.").Add(12)
	r.Gauge("demo_depth", "Current queue depth.").Set(7)
	r.GaugeFunc("demo_temperature", "A computed gauge.", func() float64 { return 36.6 })
	h := r.Histogram("demo_batch_bytes", "Batch sizes in bytes.")
	h.Observe(0)
	h.Observe(1)
	h.Observe(3)
	h.Observe(8)
	d := r.DurationHistogram("demo_apply_seconds", "Apply latency.")
	d.Observe(1024) // 1024ns, lands in bucket 11 ([1024,2048))
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	const path = "testdata/metrics.golden"
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("exposition output drifted from golden file (run with -update to refresh)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHistogramBucketMonotonicity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono_bytes", "monotonicity fixture")
	for v := uint64(1); v < 100000; v = v*3 + 1 {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var (
		prev      uint64
		buckets   int
		infCount  uint64
		countLine uint64
	)
	for _, line := range strings.Split(sb.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "mono_bytes_bucket"):
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("cumulative buckets must be non-decreasing: %q after %d", line, prev)
			}
			prev = v
			buckets++
			if strings.Contains(line, `le="+Inf"`) {
				infCount = v
			}
		case strings.HasPrefix(line, "mono_bytes_count"):
			countLine, _ = strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		}
	}
	if buckets < 3 {
		t.Fatalf("expected several bucket lines, got %d", buckets)
	}
	if infCount == 0 || infCount != countLine {
		t.Fatalf("le=\"+Inf\" (%d) must equal _count (%d)", infCount, countLine)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", `help with \ backslash`+"\nand newline", L("path", "a\\b\"c\nd")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `path="a\\b\"c\nd"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if !strings.Contains(out, `# HELP esc_total help with \\ backslash\nand newline`) {
		t.Fatalf("help text not escaped:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("escaped output must stay 3 physical lines:\n%q", out)
	}
}

// TestConcurrentScrape hammers every metric kind from writer goroutines
// while scraping in parallel; under -race this proves scrapes never
// lock out or tear the write path.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "h")
	g := r.Gauge("hot_depth", "h")
	h := r.DurationHistogram("hot_seconds", "h")
	r.GaugeFunc("hot_calc", "h", func() float64 { return float64(c.Value()) })

	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i))
				h.Observe(seed*1000 + i)
				// Concurrent registration of an existing series must
				// also be scrape-safe.
				r.Counter("hot_total", "h").Add(1)
			}
		}(uint64(w))
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), "hot_seconds_count") {
			t.Fatal("scrape lost a series mid-flight")
		}
	}
	close(stop)
	wg.Wait()

	// After quiescing, the histogram invariants must hold exactly.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var inf, count string
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "hot_seconds_bucket") && strings.Contains(line, "+Inf") {
			inf = line[strings.LastIndexByte(line, ' ')+1:]
		}
		if strings.HasPrefix(line, "hot_seconds_count") {
			count = line[strings.LastIndexByte(line, ' ')+1:]
		}
	}
	if inf == "" || inf != count {
		t.Fatalf("quiesced histogram: +Inf %q != count %q", inf, count)
	}
	if c.Value() != h.Count()*2 {
		t.Fatalf("counter %d must be twice histogram count %d", c.Value(), h.Count())
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
	if h.Count() == 0 {
		b.Fatal("no observations")
	}
}
