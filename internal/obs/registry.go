package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value pair attached to a metric. Metrics that share
// a family name but differ in labels are distinct series under one
// HELP/TYPE header.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: a family name, a rendered label set,
// and exactly one live handle.
type metric struct {
	name   string
	help   string
	labels string // pre-rendered `k1="v1",k2="v2"`, keys sorted, values escaped
	kind   metricKind
	den    float64 // exposition divisor for histograms: 1 raw, 1e9 ns→seconds

	c *Counter
	g *Gauge
	h *Histogram

	mu sync.Mutex // guards fn, which re-registration may swap
	fn func() float64
}

func (m *metric) callFn() float64 {
	m.mu.Lock()
	fn := m.fn
	m.mu.Unlock()
	return fn()
}

func (m *metric) setFn(fn func() float64) {
	m.mu.Lock()
	m.fn = fn
	m.mu.Unlock()
}

// Registry is a set of metrics. Registration is idempotent: asking for
// a name+label set that already exists returns the existing handle
// (re-registering a GaugeFunc replaces its callback — latest wins), so
// a component rebuilt against a shared registry re-binds to its series
// instead of colliding. Asking for an existing series as a different
// type panics — that is a programming error, not a runtime condition.
//
// All methods are safe for concurrent use. A Registry must be created
// by NewRegistry (or obtained from Default/Disabled); the zero value is
// not usable.
type Registry struct {
	disabled bool

	mu    sync.Mutex
	byKey map[string]*metric
	order []*metric
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry { return &Registry{byKey: make(map[string]*metric)} }

var std = NewRegistry()

// Default is the process-global registry — what a daemon wires its
// monitors and HTTP layer into so one scrape sees everything.
func Default() *Registry { return std }

var off = &Registry{disabled: true}

// Disabled returns the sentinel registry whose constructors hand out
// nil (no-op) handles and whose scrape output is empty. Passing it to a
// component turns that component's instrumentation off.
func Disabled() *Registry { return off }

// IsDisabled reports whether the registry drops all registrations; true
// for a nil *Registry.
func (r *Registry) IsDisabled() bool { return r == nil || r.disabled }

func (r *Registry) register(name, help string, kind metricKind, den float64, labels []Label) *metric {
	if r.IsDisabled() {
		return nil
	}
	ls := renderLabels(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind || m.den != den {
			panic(fmt.Sprintf("obs: metric %s re-registered as a different type", key))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: ls, kind: kind, den: den}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{}
	}
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or re-binds to) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, 1, labels)
	if m == nil {
		return nil
	}
	return m.c
}

// Gauge registers (or re-binds to) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, 1, labels)
	if m == nil {
		return nil
	}
	return m.g
}

// GaugeFunc registers a gauge series whose value is computed by fn at
// scrape time — for state some other structure already maintains (live
// tuple counts, violation totals). Re-registering replaces the callback,
// so a rebuilt component points the series at its new instance.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.register(name, help, kindGaugeFunc, 1, labels)
	if m != nil {
		m.setFn(fn)
	}
}

// Histogram registers (or re-binds to) a histogram series over raw
// units (bytes, counts). Exposed bucket bounds are powers of two.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	m := r.register(name, help, kindHistogram, 1, labels)
	if m == nil {
		return nil
	}
	return m.h
}

// DurationHistogram registers (or re-binds to) a histogram that is
// observed in nanoseconds (ObserveDuration/ObserveSince) and exposed in
// seconds, per Prometheus convention.
func (r *Registry) DurationHistogram(name, help string, labels ...Label) *Histogram {
	m := r.register(name, help, kindHistogram, 1e9, labels)
	if m == nil {
		return nil
	}
	return m.h
}

// renderLabels pre-renders a label set in sorted key order so that the
// same labels always produce the same registry key and exposition text.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}
