package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV loads a relation from CSV. The first record is the header and
// becomes the schema's attribute names (all with unbounded domains).
func ReadCSV(r io.Reader, schemaName string) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	attrs := make([]Attribute, len(header))
	for i, h := range header {
		attrs[i] = Attr(h)
	}
	schema, err := NewSchema(schemaName, attrs...)
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d: expected %d fields, got %d", line, len(header), len(rec))
		}
		if err := rel.Insert(Tuple(rec)); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
	return rel, nil
}

// WriteCSV writes the relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Schema.Names()); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	for _, t := range rel.Tuples {
		if err := cw.Write([]string(t)); err != nil {
			return fmt.Errorf("relation: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
