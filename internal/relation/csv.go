package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// ReadCSV loads a relation from CSV. The first record is the header and
// becomes the schema's attribute names (all with unbounded domains).
// One-shot loads (detect once, exit) go through here; long-lived
// consumers that want the load deduplicated into a shareable value pool
// use ReadCSVInterned.
func ReadCSV(r io.Reader, schemaName string) (*Relation, error) {
	return ReadCSVInterned(r, schemaName, nil)
}

// ReadCSVInterned is ReadCSV with a caller-supplied value pool: every
// field is canonicalized through in, so categorical data ("NYC" in a
// million rows) lands as one backing copy per distinct value and the
// returned relation shares storage with any other consumer of the same
// pool (pass the pool on to MonitorOptions.Intern and a seed load never
// duplicates the serving pool's strings). The per-cell pool lookup is a
// deliberate tax on load time — worth it for a serving node's resident
// state, not for a one-shot scan, which is why ReadCSV skips it. A nil
// pool disables interning. The pool only grows; see Interner.
func ReadCSVInterned(r io.Reader, schemaName string, in *Interner) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	attrs := make([]Attribute, len(header))
	for i, h := range header {
		attrs[i] = Attr(h)
	}
	schema, err := NewSchema(schemaName, attrs...)
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV line %d: expected %d fields, got %d", line, len(header), len(rec))
		}
		t := Tuple(rec)
		if in != nil {
			t = in.InternTuple(t)
		}
		if err := rel.Insert(t); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
	return rel, nil
}

// WriteCSV writes the relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Schema.Names()); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	for _, t := range rel.Tuples {
		if err := cw.Write([]string(t)); err != nil {
			return fmt.Errorf("relation: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
