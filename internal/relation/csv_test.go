package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	r := New(MustSchema("cust", Attr("CC"), Attr("CT")))
	r.MustInsert("01", "NYC")
	r.MustInsert("44", "New, York") // embedded comma forces quoting
	r.MustInsert("01", `say "hi"`)  // embedded quotes

	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "cust")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", back.Len(), r.Len())
	}
	for i := range r.Tuples {
		if !back.Tuples[i].Equal(r.Tuples[i]) {
			t.Errorf("row %d: %v != %v", i, back.Tuples[i], r.Tuples[i])
		}
	}
	if got := back.Schema.Names(); got[0] != "CC" || got[1] != "CT" {
		t.Errorf("header round trip: %v", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "R"); err == nil {
		t.Error("empty input must fail (no header)")
	}
	if _, err := ReadCSV(strings.NewReader("A,A\n1,2\n"), "R"); err == nil {
		t.Error("duplicate header columns must fail")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1\n"), "R"); err == nil {
		t.Error("short rows must fail")
	}
}

func TestReadCSVEmptyRelation(t *testing.T) {
	r, err := ReadCSV(strings.NewReader("A,B\n"), "R")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}
