package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	r := New(MustSchema("cust", Attr("CC"), Attr("CT")))
	r.MustInsert("01", "NYC")
	r.MustInsert("44", "New, York") // embedded comma forces quoting
	r.MustInsert("01", `say "hi"`)  // embedded quotes

	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "cust")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", back.Len(), r.Len())
	}
	for i := range r.Tuples {
		if !back.Tuples[i].Equal(r.Tuples[i]) {
			t.Errorf("row %d: %v != %v", i, back.Tuples[i], r.Tuples[i])
		}
	}
	if got := back.Schema.Names(); got[0] != "CC" || got[1] != "CT" {
		t.Errorf("header round trip: %v", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "R"); err == nil {
		t.Error("empty input must fail (no header)")
	}
	if _, err := ReadCSV(strings.NewReader("A,A\n1,2\n"), "R"); err == nil {
		t.Error("duplicate header columns must fail")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\n1\n"), "R"); err == nil {
		t.Error("short rows must fail")
	}
}

func TestReadCSVEmptyRelation(t *testing.T) {
	r, err := ReadCSV(strings.NewReader("A,B\n"), "R")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

// TestReadCSVInterned: the CSV reader deduplicates values through the
// pool, and a shared pool canonicalizes across consumers.
func TestReadCSVInterned(t *testing.T) {
	csv := "CT,ST\nNYC,NY\nNYC,NY\nALB,NY\n"
	pool := NewInterner()
	rel, err := ReadCSVInterned(strings.NewReader(csv), "R", pool)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("len = %d", rel.Len())
	}
	// Three distinct values across six cells.
	if pool.Len() != 3 {
		t.Errorf("pool holds %d values, want 3 (NYC, NY, ALB)", pool.Len())
	}
	// The pooled copy is canonical: a fresh equal string interns to the
	// relation's backing copy without growing the pool.
	if got := pool.Intern("NYC"); got != rel.Tuples[0][0] {
		t.Errorf("pool returned %q, want the canonical copy", got)
	}
	if pool.Len() != 3 {
		t.Errorf("pool grew to %d on a hit", pool.Len())
	}
	// Plain ReadCSV loads the same values (without touching any pool).
	rel2, err := ReadCSV(strings.NewReader(csv), "R")
	if err != nil {
		t.Fatal(err)
	}
	if !rel2.Tuples[0].Equal(rel.Tuples[0]) {
		t.Error("interned read changed values")
	}
}
