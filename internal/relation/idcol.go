package relation

import "encoding/binary"

// This file holds the ID-column key helpers: packed byte keys and
// hashing over dense uint32 value-ID vectors (see Interner.ID). An
// ID-keyed group index stores 4 bytes per value instead of the
// length-prefixed string encoding of EncodeKey — and because IDs are
// fixed-width, packing, hashing and comparing are tight branch-free
// loops over words instead of per-byte scans over strings.
//
// Invariant: HashIDs(ids) == HashBytes(AppendIDKey(nil, ids)) — one
// canonical routing hash whether the caller holds the ID vector or the
// packed key string (snapshot recovery re-derives shards from packed
// keys with Hash; the hot path hashes the vector directly).

// AppendIDKey appends the packed little-endian encoding of ids to dst
// and returns it: 4 bytes per ID, no framing. IDs are fixed-width, so
// unlike EncodeKey no length prefixes are needed for the encoding to be
// prefix-free at a known arity.
func AppendIDKey(dst []byte, ids []uint32) []byte {
	for _, id := range ids {
		dst = binary.LittleEndian.AppendUint32(dst, id)
	}
	return dst
}

// DecodeIDKey appends the IDs packed in key (an AppendIDKey encoding)
// to dst and returns it. A key whose length is not a multiple of 4
// yields the whole 4-byte prefix groups and ignores the tail.
func DecodeIDKey(dst []uint32, key string) []uint32 {
	for len(key) >= 4 {
		dst = append(dst, uint32(key[0])|uint32(key[1])<<8|uint32(key[2])<<16|uint32(key[3])<<24)
		key = key[4:]
	}
	return dst
}

// HashIDs is the FNV-1a hash of the packed encoding of ids, computed
// directly from the vector — no byte materialization, four unrolled
// mix steps per ID.
func HashIDs(ids []uint32) uint32 {
	h := uint32(2166136261)
	for _, id := range ids {
		h ^= id & 0xff
		h *= 16777619
		h ^= (id >> 8) & 0xff
		h *= 16777619
		h ^= (id >> 16) & 0xff
		h *= 16777619
		h ^= id >> 24
		h *= 16777619
	}
	return h
}

// EqualIDs reports whether two ID vectors are identical — the
// branch-free batch comparison of two ID columns (one length check,
// then a compare-accumulate loop the compiler keeps branchless).
func EqualIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	var diff uint32
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}
