package relation

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestInternerIDRoundTripConcurrent is the ID-path property test: under
// concurrent interning of overlapping value sets, every ID any goroutine
// ever observes must resolve back (ByID) to exactly the value it was
// assigned for, IDs must be dense (pool length == distinct values), and
// Materialize must invert AppendIDs.
func TestInternerIDRoundTripConcurrent(t *testing.T) {
	in := NewInterner()
	const goroutines = 8
	const rounds = 200
	// Overlapping per-goroutine vocabularies: value v%d.%d is shared by
	// every goroutine, so most ID calls race on the same misses.
	vocab := make([]Value, 40)
	for i := range vocab {
		vocab[i] = Value(fmt.Sprintf("v%d.%d", i/10, i%10))
	}
	vocab[0] = "" // the empty value is a legal, internable value

	type obs struct{ ids map[uint32]Value }
	results := make([]obs, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			seen := map[uint32]Value{}
			var idbuf []uint32
			for r := 0; r < rounds; r++ {
				// Single-value path.
				v := vocab[rng.Intn(len(vocab))]
				seen[in.ID(v)] = v
				// Batch path over a random tuple.
				tup := Tuple{
					vocab[rng.Intn(len(vocab))],
					vocab[rng.Intn(len(vocab))],
					vocab[rng.Intn(len(vocab))],
				}
				idbuf = in.AppendIDs(idbuf[:0], tup)
				for i, id := range idbuf {
					seen[id] = tup[i]
				}
			}
			results[g] = obs{ids: seen}
		}(g)
	}
	wg.Wait()

	merged := map[uint32]Value{}
	for g, r := range results {
		for id, v := range r.ids {
			if got := in.ByID(id); got != v {
				t.Fatalf("goroutine %d: ByID(%d) = %q, want %q", g, id, got, v)
			}
			if prev, ok := merged[id]; ok && prev != v {
				t.Fatalf("ID %d handed out for both %q and %q", id, prev, v)
			}
			merged[id] = v
		}
	}
	// Dense: one ID per distinct value actually interned, starting at 0.
	if n := in.Len(); n != len(merged) {
		t.Fatalf("pool holds %d values, observed %d distinct IDs", n, len(merged))
	}
	for id := range merged {
		if int(id) >= len(merged) {
			t.Fatalf("ID %d outside dense range [0,%d)", id, len(merged))
		}
	}
	// Materialize inverts AppendIDs.
	tup := Tuple{vocab[3], vocab[3], "", vocab[17]}
	ids := in.AppendIDs(nil, tup)
	back := in.Materialize(nil, ids)
	if len(back) != len(tup) {
		t.Fatalf("materialized %d values, want %d", len(back), len(tup))
	}
	for i := range tup {
		if back[i] != tup[i] {
			t.Fatalf("materialize[%d] = %q, want %q", i, back[i], tup[i])
		}
	}
}

// TestIDKeyHashInvariant pins the routing invariant idcol.go documents:
// HashIDs over the vector equals HashBytes (and Hash) over the packed
// key, and DecodeIDKey inverts AppendIDKey.
func TestIDKeyHashInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		ids := make([]uint32, rng.Intn(6))
		for i := range ids {
			// Mix tiny IDs with ones exercising all four bytes.
			ids[i] = uint32(rng.Int63()) >> uint(rng.Intn(32))
		}
		packed := AppendIDKey(nil, ids)
		if len(packed) != 4*len(ids) {
			t.Fatalf("packed %d IDs into %d bytes", len(ids), len(packed))
		}
		if h, hb := HashIDs(ids), HashBytes(packed); h != hb {
			t.Fatalf("HashIDs = %#x, HashBytes(packed) = %#x for %v", h, hb, ids)
		}
		if h, hs := HashIDs(ids), Hash(string(packed)); h != hs {
			t.Fatalf("HashIDs = %#x, Hash(packed string) = %#x for %v", h, hs, ids)
		}
		back := DecodeIDKey(nil, string(packed))
		if len(back) != len(ids) {
			t.Fatalf("decoded %d IDs, want %d", len(back), len(ids))
		}
		for i := range ids {
			if back[i] != ids[i] {
				t.Fatalf("decode[%d] = %d, want %d", i, back[i], ids[i])
			}
		}
		if !EqualIDs(ids, back) {
			t.Fatalf("EqualIDs(%v, decoded) = false", ids)
		}
	}
	if EqualIDs([]uint32{1, 2}, []uint32{1, 3}) || EqualIDs([]uint32{1}, []uint32{1, 1}) {
		t.Fatal("EqualIDs accepted unequal vectors")
	}
}
