package relation

import (
	"strings"
	"sync"
)

// This file is the interned value pool behind the mutation hot path.
// Value stays a plain string at every API boundary; interning only
// canonicalizes the backing storage, so a relation full of categorical
// data ("NYC" in a million tuples) holds one copy of each distinct
// value, and the hash of an encoded projection key is computed once per
// distinct key instead of once per mutation.

// Hash returns the FNV-1a hash of a value. It is the hash the sharded
// stores route on; Interner caches it per distinct value so hot paths
// never rehash an interned key.
func Hash(v Value) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(v); i++ {
		h ^= uint32(v[i])
		h *= 16777619
	}
	return h
}

// HashBytes is Hash over a byte slice — same function, same values, so a
// key encoded into stack scratch can be routed to a shard without the
// string conversion a Hash call would allocate.
func HashBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}

// sym is one interned value with its cached hash.
type sym struct {
	v Value
	h uint32
}

// Interner is a concurrency-safe dedup pool of Values. Intern of an
// already-seen value returns the pooled copy (and its cached hash)
// without allocating; a first-seen value is copied once into the pool.
//
// The pool only grows: a value stays interned even after every tuple
// referencing it is gone. For a monitor over categorical data that is
// the point — the distinct-value set is small and stable — but callers
// feeding unbounded unique values (UUIDs, timestamps) should intern
// selectively or not at all.
type Interner struct {
	mu sync.RWMutex
	m  map[string]sym
}

// NewInterner returns an empty pool.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]sym)}
}

// Intern returns the canonical copy of v. Hits are allocation-free; a
// first-seen value is cloned into the pool so the pool never retains a
// larger backing array v might be a substring of (a CSV read buffer, a
// decoded WAL record).
func (in *Interner) Intern(v Value) Value {
	in.mu.RLock()
	s, ok := in.m[v]
	in.mu.RUnlock()
	if ok {
		return s.v
	}
	in.mu.Lock()
	if s, ok = in.m[v]; !ok {
		s = sym{v: strings.Clone(v), h: Hash(v)}
		in.m[s.v] = s
	}
	in.mu.Unlock()
	return s.v
}

// InternBytes returns the canonical Value equal to string(b) and its
// cached hash. On a hit nothing is allocated: the conversion inside the
// map index does not escape, and the pooled string is returned.
func (in *Interner) InternBytes(b []byte) (Value, uint32) {
	in.mu.RLock()
	s, ok := in.m[string(b)]
	in.mu.RUnlock()
	if ok {
		return s.v, s.h
	}
	in.mu.Lock()
	// Recheck under the write lock: another goroutine may have interned
	// the same bytes between the RUnlock and here.
	if s, ok = in.m[string(b)]; !ok {
		s = sym{v: string(b), h: Hash(string(b))}
		in.m[s.v] = s
	}
	in.mu.Unlock()
	return s.v, s.h
}

// InternTuple canonicalizes every value of t in place and returns t.
func (in *Interner) InternTuple(t Tuple) Tuple {
	for i, v := range t {
		t[i] = in.Intern(v)
	}
	return t
}

// Len returns the number of distinct interned values.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.m)
}
