package relation

import (
	"strings"
	"sync"
)

// This file is the interned value pool behind the mutation hot path.
// Value stays a plain string at every API boundary; interning only
// canonicalizes the backing storage, so a relation full of categorical
// data ("NYC" in a million tuples) holds one copy of each distinct
// value, and the hash of an encoded projection key is computed once per
// distinct key instead of once per mutation.
//
// Beyond canonical strings, the pool hands out dense uint32 value IDs:
// the i-th distinct value interned gets ID i. IDs are the currency of
// the ID-column stores in internal/incremental — tuples and group keys
// hold 4-byte IDs instead of 16-byte string headers — and ByID /
// Materialize turn them back into strings at API boundaries. IDs are
// process-local: they depend on interning order, so they are never
// written to the WAL, and snapshots embed their own value table and
// remap on load (see incremental/persist.go).

// Hash returns the FNV-1a hash of a value. It is the hash the sharded
// stores route on; Interner caches it per distinct value so hot paths
// never rehash an interned key.
func Hash(v Value) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(v); i++ {
		h ^= uint32(v[i])
		h *= 16777619
	}
	return h
}

// HashBytes is Hash over a byte slice — same function, same values, so a
// key encoded into stack scratch can be routed to a shard without the
// string conversion a Hash call would allocate.
func HashBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}

// sym is one interned value with its cached hash and dense ID.
type sym struct {
	v  Value
	h  uint32
	id uint32
}

// Interner is a concurrency-safe dedup pool of Values. Intern of an
// already-seen value returns the pooled copy (and its cached hash)
// without allocating; a first-seen value is copied once into the pool
// and assigned the next dense uint32 ID.
//
// The pool only grows: a value stays interned even after every tuple
// referencing it is gone. For a monitor over categorical data that is
// the point — the distinct-value set is small and stable — but callers
// feeding unbounded unique values (UUIDs, timestamps) should note that
// every distinct value costs one pooled copy for the pool's lifetime.
// (The ID-column tuple store interns every column; see the tradeoff
// note on incremental.Options.Intern.)
type Interner struct {
	mu sync.RWMutex
	m  map[string]sym
	// ids maps ID → canonical value; append-only, index = sym.id.
	ids []Value
}

// NewInterner returns an empty pool.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]sym)}
}

// Intern returns the canonical copy of v. Hits are allocation-free; a
// first-seen value is cloned into the pool so the pool never retains a
// larger backing array v might be a substring of (a CSV read buffer, a
// decoded WAL record).
func (in *Interner) Intern(v Value) Value {
	in.mu.RLock()
	s, ok := in.m[v]
	in.mu.RUnlock()
	if ok {
		return s.v
	}
	in.mu.Lock()
	s = in.addLocked(v)
	in.mu.Unlock()
	return s.v
}

// ID returns the dense uint32 ID of v, interning it first if needed.
// The i-th distinct value gets ID i; ByID inverts the mapping.
func (in *Interner) ID(v Value) uint32 {
	in.mu.RLock()
	s, ok := in.m[v]
	in.mu.RUnlock()
	if ok {
		return s.id
	}
	in.mu.Lock()
	s = in.addLocked(v)
	in.mu.Unlock()
	return s.id
}

// addLocked interns v under the write lock (re-checking first: another
// goroutine may have interned it between the caller's RUnlock and here)
// and returns its sym.
func (in *Interner) addLocked(v Value) sym {
	if s, ok := in.m[v]; ok {
		return s
	}
	s := sym{v: strings.Clone(v), h: Hash(v), id: uint32(len(in.ids))}
	in.m[s.v] = s
	in.ids = append(in.ids, s.v)
	return s
}

// InternBytes returns the canonical Value equal to string(b) and its
// cached hash. On a hit nothing is allocated: the conversion inside the
// map index does not escape, and the pooled string is returned.
func (in *Interner) InternBytes(b []byte) (Value, uint32) {
	in.mu.RLock()
	s, ok := in.m[string(b)]
	in.mu.RUnlock()
	if ok {
		return s.v, s.h
	}
	in.mu.Lock()
	s = in.addLocked(string(b))
	in.mu.Unlock()
	return s.v, s.h
}

// InternTuple canonicalizes every value of t in place and returns t.
func (in *Interner) InternTuple(t Tuple) Tuple {
	for i, v := range t {
		t[i] = in.Intern(v)
	}
	return t
}

// AppendIDs appends the IDs of every value of t to dst and returns it,
// interning first-seen values. The common all-hits case runs under one
// read lock; misses fall back to per-value interning.
func (in *Interner) AppendIDs(dst []uint32, t Tuple) []uint32 {
	base := len(dst)
	miss := false
	in.mu.RLock()
	for _, v := range t {
		s, ok := in.m[v]
		if !ok {
			miss = true
			break
		}
		dst = append(dst, s.id)
	}
	in.mu.RUnlock()
	if !miss {
		return dst
	}
	dst = dst[:base]
	for _, v := range t {
		dst = append(dst, in.ID(v))
	}
	return dst
}

// ByID returns the canonical value with the given ID. IDs are dense and
// handed out in intern order, so any ID below Len is valid; an
// out-of-range ID returns "".
func (in *Interner) ByID(id uint32) Value {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if int(id) >= len(in.ids) {
		return ""
	}
	return in.ids[id]
}

// Materialize appends the values of the given IDs to dst and returns
// it — the string boundary of an ID-column store. One lock round for
// the whole vector.
func (in *Interner) Materialize(dst []Value, ids []uint32) []Value {
	in.mu.RLock()
	defer in.mu.RUnlock()
	for _, id := range ids {
		if int(id) < len(in.ids) {
			dst = append(dst, in.ids[id])
		} else {
			dst = append(dst, "")
		}
	}
	return dst
}

// Values returns a copy of the ID table: index i holds the value with
// ID i. Snapshot codecs write this table once and store IDs everywhere
// else.
func (in *Interner) Values() []Value {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return append([]Value(nil), in.ids...)
}

// Len returns the number of distinct interned values.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.m)
}
