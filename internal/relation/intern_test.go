package relation

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternerCanonicalizes(t *testing.T) {
	in := NewInterner()
	a := in.Intern("NYC")
	b := in.Intern("NY" + "C"[:1]) // equal value, distinct backing bytes
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d, want 1", in.Len())
	}
	c, h := in.InternBytes([]byte("NYC"))
	if c != "NYC" || h != Hash("NYC") {
		t.Fatalf("InternBytes = %q/%d, want NYC/%d", c, h, Hash("NYC"))
	}
	// Distinct values stay distinct.
	if d := in.Intern("MH"); d != "MH" || in.Len() != 2 {
		t.Fatalf("second value: %q, Len = %d", d, in.Len())
	}
}

func TestInternTuple(t *testing.T) {
	in := NewInterner()
	tp := Tuple{"a", "b", "a"}
	out := in.InternTuple(tp)
	if &out[0] != &tp[0] {
		t.Fatal("InternTuple must canonicalize in place")
	}
	if !out.Equal(Tuple{"a", "b", "a"}) {
		t.Fatalf("values changed: %v", out)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2 distinct values", in.Len())
	}
}

// TestInternerConcurrent hammers one pool from parallel goroutines; run
// under -race. Every caller must get the same canonical value per key.
func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	var wg sync.WaitGroup
	const workers, vals = 8, 64
	got := make([][]Value, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]Value, vals)
			for i := 0; i < vals; i++ {
				got[w][i] = in.Intern(fmt.Sprintf("v%d", i))
			}
		}(w)
	}
	wg.Wait()
	if in.Len() != vals {
		t.Fatalf("Len = %d, want %d", in.Len(), vals)
	}
	for w := 1; w < workers; w++ {
		for i := range got[w] {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d value %d diverges", w, i)
			}
		}
	}
}

func TestAppendKeyMatchesEncodeKey(t *testing.T) {
	cases := [][]Value{
		nil,
		{""},
		{"a"},
		{"a", "bc"},
		{"1:x", "", "yy"},
	}
	for _, vals := range cases {
		if got, want := string(AppendKey(nil, vals)), EncodeKey(vals); got != want {
			t.Fatalf("AppendKey(%q) = %q, want %q", vals, got, want)
		}
	}
	// Appending extends dst rather than replacing it.
	buf := AppendKey([]byte("pre"), []Value{"x"})
	if string(buf) != "pre"+EncodeKey([]Value{"x"}) {
		t.Fatalf("AppendKey with prefix = %q", buf)
	}
}

func BenchmarkInternHit(b *testing.B) {
	in := NewInterner()
	in.Intern("NYC")
	key := []byte("NYC")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.InternBytes(key)
	}
}
