// Package relation provides the in-memory relational substrate used by the
// CFD library: typed schemas, tuples, relations, hash indexes and CSV I/O.
//
// It plays the role of the database tables in the paper's experiments
// (the paper used DB2; see DESIGN.md for the substitution argument). All
// attribute values are strings; domains — including the finite domains that
// drive the NP-hardness results of the paper — are schema metadata.
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is the type of a single attribute value. The paper's data model is
// categorical, so values are strings; numeric attributes are compared
// numerically where SQL semantics demand it (see internal/sqlmini).
type Value = string

// Tuple is a data tuple: one Value per schema attribute, positionally.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether two tuples have identical arity and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Domain describes the set of admissible values of an attribute. A nil
// Values slice means the domain is unbounded (e.g. free-form strings); a
// non-nil Values slice makes the domain finite, which is what complicates
// the consistency analysis of CFDs (Example 3.1 / Theorem 3.1 in the paper).
type Domain struct {
	// Name is a human-readable domain name such as "bool" or "state".
	Name string
	// Values enumerates the finite domain; nil means infinite.
	Values []Value
}

// Finite reports whether the domain is finite.
func (d *Domain) Finite() bool { return d != nil && d.Values != nil }

// Contains reports whether v belongs to the domain. Infinite domains
// contain every value.
func (d *Domain) Contains(v Value) bool {
	if !d.Finite() {
		return true
	}
	for _, dv := range d.Values {
		if dv == v {
			return true
		}
	}
	return false
}

// Bool is the two-valued domain used in the paper's Example 3.1.
func Bool() *Domain { return &Domain{Name: "bool", Values: []Value{"true", "false"}} }

// Enum builds a finite domain from the given values.
func Enum(name string, values ...Value) *Domain {
	return &Domain{Name: name, Values: append([]Value(nil), values...)}
}

// Attribute is a named, optionally domain-constrained column.
type Attribute struct {
	Name   string
	Domain *Domain // nil means unbounded string domain
}

// Attr is shorthand for an attribute with an unbounded domain.
func Attr(name string) Attribute { return Attribute{Name: name} }

// Schema is a relation schema R over a fixed list of attributes attr(R).
type Schema struct {
	Name  string
	Attrs []Attribute

	index map[string]int
}

// NewSchema builds a schema and validates that attribute names are unique
// and non-empty.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	s := &Schema{Name: name, Attrs: append([]Attribute(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i, a := range s.Attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: schema %q: attribute %d has empty name", name, i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("relation: schema %q: duplicate attribute %q", name, a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; intended for fixed literal
// schemas in tests and generators.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.Attrs) }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of the named attribute and panics if the
// attribute does not exist; use only where the name was already validated.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("relation: schema %q has no attribute %q", s.Name, name))
	}
	return i
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}

// Domain returns the domain of the named attribute (nil if unbounded or
// unknown attribute).
func (s *Schema) Domain(name string) *Domain {
	if i, ok := s.index[name]; ok {
		return s.Attrs[i].Domain
	}
	return nil
}

// Indexes resolves a list of attribute names to positions.
func (s *Schema) Indexes(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		j, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("relation: schema %q has no attribute %q", s.Name, n)
		}
		out[i] = j
	}
	return out, nil
}

// Relation is an instance I of a schema R: an ordered multiset of tuples.
// Tuple order is insertion order; row ids are stable positions.
type Relation struct {
	Schema *Schema
	Tuples []Tuple
}

// New returns an empty instance of the schema.
func New(schema *Schema) *Relation {
	return &Relation{Schema: schema}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Insert appends a tuple after checking its arity and domains.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("relation: %q expects %d values, got %d", r.Schema.Name, r.Schema.Len(), len(t))
	}
	for i, a := range r.Schema.Attrs {
		if !a.Domain.Contains(t[i]) {
			return fmt.Errorf("relation: %q.%s: value %q outside domain %s", r.Schema.Name, a.Name, t[i], a.Domain.Name)
		}
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustInsert inserts values positionally and panics on error; for fixtures.
func (r *Relation) MustInsert(vals ...Value) {
	if err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Clone deep-copies the relation (schema is shared, tuples are copied).
func (r *Relation) Clone() *Relation {
	c := New(r.Schema)
	c.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}

// Project returns the values of the named attributes for the given tuple.
func (r *Relation) Project(row int, idx []int) Tuple {
	t := r.Tuples[row]
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// DistinctProjection returns the distinct projections of the relation on
// the given attributes, in first-seen order.
func (r *Relation) DistinctProjection(names []string) ([]Tuple, error) {
	idx, err := r.Schema.Indexes(names)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []Tuple
	for row := range r.Tuples {
		p := r.Project(row, idx)
		k := EncodeKey(p)
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out, nil
}

// String renders a small relation as an aligned text table (for examples
// and error messages; not meant for large instances).
func (r *Relation) String() string {
	var b strings.Builder
	names := r.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	for _, t := range r.Tuples {
		for i, v := range t {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for p := len(v); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for _, t := range r.Tuples {
		writeRow(t)
	}
	return b.String()
}

// EncodeKey encodes a list of values into a single map key. Values are
// length-prefixed so that no two distinct value lists collide. This sits
// on the hash-join and grouping hot paths, so it avoids fmt.
func EncodeKey(vals []Value) string {
	return string(AppendKey(nil, vals))
}

// AppendKey appends the EncodeKey encoding of vals to dst and returns
// the extended slice. Callers on mutation hot paths reuse one scratch
// buffer across encodes and probe maps with string(buf) — which the
// compiler keeps off the heap — so a key encode costs zero allocations
// unless the key is being stored.
func AppendKey(dst []byte, vals []Value) []byte {
	for _, v := range vals {
		dst = strconv.AppendInt(dst, int64(len(v)), 10)
		dst = append(dst, ':')
		dst = append(dst, v...)
	}
	return dst
}

// Index is a hash index on a fixed list of attribute positions, mapping the
// projected key to the row ids holding it.
type Index struct {
	rel  *Relation
	cols []int
	m    map[string][]int
}

// BuildIndex builds a hash index of rel on the named attributes.
func BuildIndex(rel *Relation, names []string) (*Index, error) {
	cols, err := rel.Schema.Indexes(names)
	if err != nil {
		return nil, err
	}
	ix := &Index{rel: rel, cols: cols, m: make(map[string][]int, rel.Len())}
	key := make([]Value, len(cols))
	for row, t := range rel.Tuples {
		for i, c := range cols {
			key[i] = t[c]
		}
		k := EncodeKey(key)
		ix.m[k] = append(ix.m[k], row)
	}
	return ix, nil
}

// Lookup returns the row ids whose projection equals key.
func (ix *Index) Lookup(key []Value) []int {
	return ix.m[EncodeKey(key)]
}

// Groups returns every (key, rows) group in deterministic (sorted-key) order.
func (ix *Index) Groups() [][]int {
	keys := make([]string, 0, len(ix.m))
	for k := range ix.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, ix.m[k])
	}
	return out
}
