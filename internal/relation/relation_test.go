package relation

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("R", Attr("A"), Attr("A")); err == nil {
		t.Error("duplicate attribute names must be rejected")
	}
	if _, err := NewSchema("R", Attr("")); err == nil {
		t.Error("empty attribute names must be rejected")
	}
	s, err := NewSchema("R", Attr("A"), Attr("B"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if i, ok := s.Index("B"); !ok || i != 1 {
		t.Errorf("Index(B) = %d, %v", i, ok)
	}
	if _, ok := s.Index("Z"); ok {
		t.Error("Index(Z) should not exist")
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Errorf("Names = %v", got)
	}
}

func TestMustIndexPanics(t *testing.T) {
	s := MustSchema("R", Attr("A"))
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on unknown attribute must panic")
		}
	}()
	s.MustIndex("Z")
}

func TestInsertChecksArity(t *testing.T) {
	r := New(MustSchema("R", Attr("A"), Attr("B")))
	if err := r.Insert(Tuple{"1"}); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	if err := r.Insert(Tuple{"1", "2"}); err != nil {
		t.Errorf("valid insert failed: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestInsertChecksDomain(t *testing.T) {
	s := MustSchema("R", Attribute{Name: "A", Domain: Bool()}, Attr("B"))
	r := New(s)
	if err := r.Insert(Tuple{"true", "anything"}); err != nil {
		t.Errorf("in-domain insert failed: %v", err)
	}
	if err := r.Insert(Tuple{"maybe", "x"}); err == nil {
		t.Error("out-of-domain value must be rejected")
	}
}

func TestDomainContains(t *testing.T) {
	var unbounded *Domain
	if !unbounded.Contains("anything") {
		t.Error("nil domain contains everything")
	}
	if unbounded.Finite() {
		t.Error("nil domain is not finite")
	}
	b := Bool()
	if !b.Finite() || !b.Contains("true") || b.Contains("2") {
		t.Error("bool domain misbehaves")
	}
	e := Enum("abc", "a", "b", "c")
	if !e.Contains("b") || e.Contains("d") {
		t.Error("enum domain misbehaves")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New(MustSchema("R", Attr("A")))
	r.MustInsert("x")
	c := r.Clone()
	c.Tuples[0][0] = "y"
	if r.Tuples[0][0] != "x" {
		t.Error("Clone must not share tuple storage")
	}
}

func TestProjectAndDistinct(t *testing.T) {
	r := New(MustSchema("R", Attr("A"), Attr("B"), Attr("C")))
	r.MustInsert("1", "x", "p")
	r.MustInsert("1", "x", "q")
	r.MustInsert("2", "y", "p")
	idx, err := r.Schema.Indexes([]string{"B", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Project(0, idx); !got.Equal(Tuple{"x", "1"}) {
		t.Errorf("Project = %v", got)
	}
	d, err := r.DistinctProjection([]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 {
		t.Errorf("distinct projections = %v, want 2 entries", d)
	}
}

func TestEncodeKeyInjective(t *testing.T) {
	// The classic collision: ("ab","c") vs ("a","bc") must differ.
	if EncodeKey([]Value{"ab", "c"}) == EncodeKey([]Value{"a", "bc"}) {
		t.Error("EncodeKey must be injective")
	}
	cfg := &quick.Config{MaxCount: 2000, Values: func(vs []reflect.Value, r *rand.Rand) {
		gen := func() []Value {
			n := r.Intn(4)
			out := make([]Value, n)
			for i := range out {
				b := make([]byte, r.Intn(4))
				for j := range b {
					b[j] = byte('a' + r.Intn(3))
				}
				out[i] = string(b)
			}
			return out
		}
		vs[0] = reflect.ValueOf(gen())
		vs[1] = reflect.ValueOf(gen())
	}}
	if err := quick.Check(func(a, b []Value) bool {
		eq := len(a) == len(b)
		if eq {
			for i := range a {
				if a[i] != b[i] {
					eq = false
					break
				}
			}
		}
		return eq == (EncodeKey(a) == EncodeKey(b))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestIndexLookup(t *testing.T) {
	r := New(MustSchema("R", Attr("A"), Attr("B")))
	r.MustInsert("1", "x")
	r.MustInsert("1", "y")
	r.MustInsert("2", "x")
	ix, err := BuildIndex(r, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup([]Value{"1"}); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Lookup(1) = %v", got)
	}
	if got := ix.Lookup([]Value{"3"}); got != nil {
		t.Errorf("Lookup(3) = %v, want nil", got)
	}
	groups := ix.Groups()
	if len(groups) != 2 {
		t.Errorf("Groups = %v, want 2 groups", groups)
	}
	if _, err := BuildIndex(r, []string{"Z"}); err == nil {
		t.Error("index on unknown attribute must fail")
	}
}

func TestIndexMultiColumn(t *testing.T) {
	r := New(MustSchema("R", Attr("A"), Attr("B")))
	r.MustInsert("a", "b")
	r.MustInsert("ab", "")
	ix, err := BuildIndex(r, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup([]Value{"a", "b"}); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("multi-column key collided: %v", got)
	}
}

func TestRelationString(t *testing.T) {
	r := New(MustSchema("R", Attr("A"), Attr("Long")))
	r.MustInsert("1", "xx")
	s := r.String()
	if !strings.Contains(s, "A") || !strings.Contains(s, "Long") || !strings.Contains(s, "xx") {
		t.Errorf("String output missing content:\n%s", s)
	}
	if len(strings.Split(strings.TrimRight(s, "\n"), "\n")) != 2 {
		t.Errorf("String should have header + 1 row:\n%s", s)
	}
}

func TestTupleEqual(t *testing.T) {
	if !(Tuple{"a", "b"}).Equal(Tuple{"a", "b"}) {
		t.Error("equal tuples reported unequal")
	}
	if (Tuple{"a"}).Equal(Tuple{"a", "b"}) {
		t.Error("different arities reported equal")
	}
	if (Tuple{"a", "b"}).Equal(Tuple{"a", "c"}) {
		t.Error("different values reported equal")
	}
}
