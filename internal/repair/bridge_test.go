package repair

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relation"
)

// Regression tests for the proposal-based planner. The earlier union-find
// planner mass-flipped whole groups when a "bridge" tuple (one corrupted
// cell placing it in two contradictory groups) connected them, and then
// ejected stuck tuples one per pass — thousands of changes, no
// convergence. These tests pin down the fixed behaviour.

// TestBridgeTupleConverges: two FDs sharing the RHS attribute MR, with a
// bridge tuple whose EXS was corrupted — it sits in a singles group by
// EXM and a marrieds group by EXS. The repair must converge quickly and
// must not rewrite the (large) majority groups.
func TestBridgeTupleConverges(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attr("EXS"), relation.Attr("EXM"), relation.Attr("MR"))
	rel := relation.New(schema)
	// 20 clean singles of state 1: EXS=1000, EXM=0, MR=S.
	for i := 0; i < 20; i++ {
		rel.MustInsert("1000", "0", "S")
	}
	// 20 clean marrieds of state 1: EXS=0, EXM=2000, MR=M.
	for i := 0; i < 20; i++ {
		rel.MustInsert("0", "2000", "M")
	}
	// The bridge: a married tuple whose EXM was corrupted to a single's
	// exemption-shaped value — wait, the bridge arises when EXS of a
	// single is corrupted to a nonzero value of the marrieds' EXS group.
	// Here: a married (EXS=0) whose EXS got the singles' 1000.
	rel.MustInsert("1000", "2000", "M")

	sigma := []*core.CFD{
		core.MustCFD([]string{"EXS"}, []string{"MR"},
			core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}}),
		core.MustCFD([]string{"EXM"}, []string{"MR"},
			core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}}),
	}
	res, err := Repair(rel, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("bridge repair must converge; %d changes over %d passes", len(res.Changes), res.Passes)
	}
	// The 40 clean tuples must be untouched: only the bridge tuple may
	// change (its MR flips during oscillation, then an LHS break ejects
	// it from one group).
	for row := 0; row < 40; row++ {
		if !res.Repaired.Tuples[row].Equal(rel.Tuples[row]) {
			t.Errorf("clean tuple %d was modified: %v -> %v", row, rel.Tuples[row], res.Repaired.Tuples[row])
		}
	}
	if res.Cost > 3 {
		t.Errorf("cost = %v; the fix should touch only the bridge tuple's cells", res.Cost)
	}
}

// TestConflictingConstForces: two constant patterns force different
// values onto the same cell — impossible to satisfy on the RHS, so the
// repair must break an LHS match (and not thrash).
func TestConflictingConstForces(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attr("B"), relation.Attr("C"), relation.Attr("A"))
	rel := relation.New(schema)
	rel.MustInsert("b", "c", "x") // matches both patterns below
	sigma := []*core.CFD{
		core.MustCFD([]string{"B"}, []string{"A"},
			core.PatternRow{X: []core.Pattern{core.C("b")}, Y: []core.Pattern{core.C("a1")}}),
		core.MustCFD([]string{"C"}, []string{"A"},
			core.PatternRow{X: []core.Pattern{core.C("c")}, Y: []core.Pattern{core.C("a2")}}),
	}
	// Σ is consistent (avoid B=b ∧ C=c co-occurrence), so Repair accepts it.
	res, err := Repair(rel, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("conflicting forces must be resolved by LHS breaking; changes: %v", res.Changes)
	}
	// B or C must have been rewritten to a fresh value.
	tup := res.Repaired.Tuples[0]
	if tup[0] == "b" && tup[1] == "c" {
		t.Errorf("tuple still matches both patterns: %v", tup)
	}
}

// TestMixedConstAndVariable: a variable violation whose pattern binds a
// constant targets the constant, not the majority.
func TestMixedConstAndVariable(t *testing.T) {
	schema := relation.MustSchema("R", relation.Attr("AC"), relation.Attr("CT"))
	rel := relation.New(schema)
	// Three tuples share AC=908; majority CT is NYC but the pattern
	// demands MH.
	rel.MustInsert("908", "NYC")
	rel.MustInsert("908", "NYC")
	rel.MustInsert("908", "MH")
	sigma := []*core.CFD{core.MustCFD([]string{"AC"}, []string{"CT"},
		core.PatternRow{X: []core.Pattern{core.C("908")}, Y: []core.Pattern{core.C("MH")}})}
	res, err := Repair(rel, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatal("must converge")
	}
	for i := 0; i < 3; i++ {
		if res.Repaired.Tuples[i][1] != "MH" {
			t.Errorf("tuple %d CT = %q, want the pattern constant MH (not the majority)", i, res.Repaired.Tuples[i][1])
		}
	}
}

// TestRepairScalesOnDenseNoise: a heavier-noise workload still converges
// within the pass budget.
func TestRepairScalesOnDenseNoise(t *testing.T) {
	data := gen.GenerateTax(gen.TaxConfig{Size: 1500, Noise: 0.15, Seed: 13})
	res, err := Repair(data.Dirty, gen.SemanticCFDs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("dense-noise repair failed after %d passes (%d changes)", res.Passes, len(res.Changes))
	}
}

// TestBreakPrefersCheapLHS: with weighted costs, breaking picks the
// cheaper constant LHS cell.
func TestBreakPrefersCheapLHS(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attr("B"), relation.Attr("C"), relation.Attr("A"))
	r := &repairer{
		orig: relation.New(schema),
		work: relation.New(schema),
		opts: Options{Cost: &CostModel{Weight: func(_ int, attr string) float64 {
			if attr == "B" {
				return 10
			}
			return 1
		}}}.withDefaults(),
		writes: make(map[int]int),
	}
	r.orig.MustInsert("b", "c", "x")
	r.work.MustInsert("b", "c", "x")
	r.breakMatch(breakReq{
		row:   core.PatternRow{X: []core.Pattern{core.C("b"), core.C("c")}, Y: []core.Pattern{core.C("a")}},
		tuple: 0,
		lhs:   []string{"B", "C"},
	})
	if r.work.Tuples[0][0] != "b" {
		t.Error("expensive B should not have been broken")
	}
	if r.work.Tuples[0][1] == "c" {
		t.Error("cheap C should have been broken")
	}
}
