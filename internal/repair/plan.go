package repair

import (
	"sort"

	"repro/internal/core"
	"repro/internal/relation"
)

// A repair plan for one pass. Every violation contributes per-cell value
// PROPOSALS:
//
//   - a constant violation proposes the pattern constant for the
//     mismatching cell (a forced proposal — Σ is ground truth);
//   - a variable violation proposes the group's target value (the pattern
//     constant if the row binds one, else the group majority) for the
//     minority cells only.
//
// Cells with agreeing proposals are simply written. A cell with
// CONFLICTING proposals is a bridge between contradictory groups — the
// CFD-specific situation where no right-hand-side value works (the
// paper's Section 6 observation). The losing proposals' matches are
// broken by modifying a left-hand-side cell to a fresh placeholder, which
// removes the tuple from the offending group for good. A per-cell write
// counter backstops residual oscillation the same way.

type proposalKind uint8

const (
	proposeMajority proposalKind = iota
	proposeForced                // from a pattern constant: authoritative
)

type proposal struct {
	val    relation.Value
	kind   proposalKind
	weight int // evidence: size of the proposing group
	brk    breakReq
}

type breakReq struct {
	row   core.PatternRow
	tuple int
	lhs   []string
}

type plan struct {
	proposals map[int][]proposal // cell id -> proposals
	cells     []int              // deterministic iteration order
	breaks    []breakReq         // pre-resolved breaking requests (stuck cells)
	seen      map[int]bool
}

func (p *plan) propose(id int, pr proposal) {
	if !p.seen[id] {
		p.seen[id] = true
		p.cells = append(p.cells, id)
	}
	p.proposals[id] = append(p.proposals[id], pr)
}

func (r *repairer) buildPlan(vs []violationRef) *plan {
	p := &plan{proposals: make(map[int][]proposal), seen: make(map[int]bool)}
	schema := r.work.Schema
	for _, ref := range vs {
		c := r.sigma[ref.cfd]
		row := c.Tableau[ref.v.Row]
		switch ref.v.Kind {
		case core.ConstViolation:
			t := ref.v.Tuples[0]
			brk := breakReq{row: row, tuple: t, lhs: c.LHS}
			for yi, a := range c.RHS {
				if row.Y[yi].Kind != core.Const {
					continue
				}
				col := schema.MustIndex(a)
				if r.work.Tuples[t][col] == row.Y[yi].Val {
					continue
				}
				id := r.cellID(t, col)
				if r.writes[id] >= r.opts.StuckThreshold {
					p.breaks = append(p.breaks, brk)
					continue
				}
				p.propose(id, proposal{val: row.Y[yi].Val, kind: proposeForced, weight: 1, brk: brk})
			}
		case core.VariableViolation:
			for yi, a := range c.RHS {
				col := schema.MustIndex(a)
				// Group target: the pattern constant when bound, else the
				// majority value (ties to the smallest, for determinism).
				var target relation.Value
				if row.Y[yi].Kind == core.Const {
					target = row.Y[yi].Val
				} else {
					counts := make(map[relation.Value]int)
					for _, t := range ref.v.Tuples {
						counts[r.work.Tuples[t][col]]++
					}
					best := -1
					for v, n := range counts {
						if n > best || (n == best && v < target) {
							best, target = n, v
						}
					}
				}
				for _, t := range ref.v.Tuples {
					if r.work.Tuples[t][col] == target {
						continue
					}
					id := r.cellID(t, col)
					brk := breakReq{row: row, tuple: t, lhs: c.LHS}
					if r.writes[id] >= r.opts.StuckThreshold {
						p.breaks = append(p.breaks, brk)
						continue
					}
					p.propose(id, proposal{val: target, weight: len(ref.v.Tuples), brk: brk})
				}
			}
		}
	}
	return p
}

func (r *repairer) applyPlan(p *plan) {
	width := r.work.Schema.Len()
	for _, id := range p.cells {
		props := p.proposals[id]
		// Rank: forced proposals beat majority ones; then larger groups;
		// then smaller value for determinism.
		sort.SliceStable(props, func(i, j int) bool {
			if props[i].kind != props[j].kind {
				return props[i].kind > props[j].kind
			}
			if props[i].weight != props[j].weight {
				return props[i].weight > props[j].weight
			}
			return props[i].val < props[j].val
		})
		winner := props[0]
		r.set(id/width, id%width, winner.val)
		// Conflicting losers are bridges: break their group match so the
		// conflict cannot recur.
		for _, loser := range props[1:] {
			if loser.val != winner.val {
				r.breakMatch(loser.brk)
			}
		}
	}
	for _, b := range p.breaks {
		r.breakMatch(b)
	}
}

// breakMatch modifies one LHS cell of the tuple so it no longer matches
// the pattern row: prefer the cheapest constant pattern cell (any fresh
// value breaks it); fall back to a wildcard cell, where the fresh value
// splits the tuple away from its X-group. Empty-LHS rows cannot be broken
// (consistency of Σ precludes conflicting empty-LHS constants).
func (r *repairer) breakMatch(b breakReq) {
	schema := r.work.Schema
	bestCol, bestCost := -1, 0.0
	pick := func(kind core.PatternKind) {
		for i, a := range b.lhs {
			if b.row.X[i].Kind != kind {
				continue
			}
			col := schema.MustIndex(a)
			w := r.opts.Cost.weight(b.tuple, a)
			if bestCol < 0 || w < bestCost {
				bestCol, bestCost = col, w
			}
		}
	}
	pick(core.Const)
	if bestCol < 0 {
		pick(core.Wildcard)
	}
	if bestCol < 0 {
		return
	}
	r.set(b.tuple, bestCol, r.fresh())
}

// breakAll is the last-resort fallback when a pass applies no changes but
// violations remain: break the match of every violation.
func (r *repairer) breakAll(vs []violationRef) {
	for _, ref := range vs {
		c := r.sigma[ref.cfd]
		row := c.Tableau[ref.v.Row]
		r.breakMatch(breakReq{row: row, tuple: ref.v.Tuples[0], lhs: c.LHS})
	}
}
