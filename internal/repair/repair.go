// Package repair implements a heuristic CFD repair algorithm — the
// Section 6 component the paper proves NP-complete (Theorem 6.1) and
// defers; we follow the cost-based value-modification framework the
// authors cite (Bohannon et al., SIGMOD 2005) adapted to CFDs.
//
// The CFD-specific twist the paper highlights: unlike plain FDs, some
// violations CANNOT be resolved by editing right-hand-side attributes —
// the repair must modify a left-hand-side attribute to break the pattern
// match. The algorithm therefore works in passes:
//
//  1. Detect all violations (internal/detect's indexed detector).
//  2. Constant violations force cells to pattern constants; variable
//     violations merge the conflicting Y-cells into equivalence classes
//     (union-find), which then receive their class plurality value.
//  3. Forced-value conflicts, and cells that keep oscillating across
//     passes, are resolved by the FD-impossible move: set a
//     left-hand-side cell to a fresh placeholder value, breaking the
//     match (fresh values are unique and match only '_' patterns).
//
// A final detection pass certifies the result; Result.Satisfied reports
// whether the repair reached I′ ⊨ Σ within the pass budget.
package repair

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/relation"
)

// Change is one applied cell modification.
type Change struct {
	Row  int
	Attr string
	From relation.Value
	To   relation.Value
}

// CostModel weights cell modifications; the default charges 1 per cell.
// Higher weights steer the heuristic away from trusted attributes (the
// cost-based model of the cited SIGMOD 2005 work).
type CostModel struct {
	Weight func(row int, attr string) float64
}

func (m *CostModel) weight(row int, attr string) float64 {
	if m == nil || m.Weight == nil {
		return 1
	}
	return m.Weight(row, attr)
}

// Options configures the heuristic.
type Options struct {
	// MaxPasses bounds the detect-resolve iterations (default 20).
	MaxPasses int
	// StuckThreshold is the number of times a cell may be rewritten before
	// the algorithm switches to LHS-breaking for its violations (default 3).
	StuckThreshold int
	// Cost is the repair cost model (nil = unit cost).
	Cost *CostModel
}

func (o Options) withDefaults() Options {
	if o.MaxPasses <= 0 {
		o.MaxPasses = 20
	}
	if o.StuckThreshold <= 0 {
		o.StuckThreshold = 3
	}
	return o
}

// Result is the outcome of a repair run.
type Result struct {
	// Repaired is the modified instance (the input is not mutated).
	Repaired *relation.Relation
	// Changes is the chronological log of applied modifications.
	Changes []Change
	// Cost is the total weight of cells that differ from the original
	// instance (each cell counted once, at its final value).
	Cost float64
	// Satisfied reports Repaired ⊨ Σ (certified by a final detection pass).
	Satisfied bool
	// Passes is the number of detect-resolve iterations used.
	Passes int
}

// Repair computes a repair of rel with respect to Σ. It returns an error
// if Σ is inconsistent (no repair can exist: no nonempty instance
// satisfies Σ) or malformed.
func Repair(rel *relation.Relation, sigma []*core.CFD, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	for i, c := range sigma {
		if err := c.Validate(rel.Schema); err != nil {
			return nil, fmt.Errorf("repair: CFD %d: %w", i, err)
		}
	}
	ok, _, err := core.Consistent(rel.Schema, sigma)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("repair: Σ is inconsistent; no nonempty instance can satisfy it")
	}

	r := &repairer{
		orig:   rel,
		work:   rel.Clone(),
		sigma:  sigma,
		opts:   opts,
		writes: make(map[int]int),
	}
	res, err := r.run()
	if err != nil {
		return nil, err
	}
	return res, nil
}

type repairer struct {
	orig    *relation.Relation
	work    *relation.Relation
	sigma   []*core.CFD
	opts    Options
	changes []Change
	writes  map[int]int // cell id -> number of rewrites
	freshN  int
}

func (r *repairer) cellID(row, col int) int { return row*r.work.Schema.Len() + col }

func (r *repairer) fresh() relation.Value {
	r.freshN++
	return fmt.Sprintf("\x00unk:%d", r.freshN)
}

func (r *repairer) set(row int, col int, v relation.Value) {
	cur := r.work.Tuples[row][col]
	if cur == v {
		return
	}
	attr := r.work.Schema.Attrs[col].Name
	r.changes = append(r.changes, Change{Row: row, Attr: attr, From: cur, To: v})
	r.work.Tuples[row][col] = v
	r.writes[r.cellID(row, col)]++
}

func (r *repairer) run() (*Result, error) {
	passes := 0
	for ; passes < r.opts.MaxPasses; passes++ {
		n, err := r.pass()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
	}
	satisfied, err := core.SatisfiesSet(r.work, r.sigma)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Repaired:  r.work,
		Changes:   r.changes,
		Satisfied: satisfied,
		Passes:    passes,
	}
	// Final cost: weight of cells differing from the original.
	cost := 0.0
	for row := range r.work.Tuples {
		for col := range r.work.Tuples[row] {
			if r.work.Tuples[row][col] != r.orig.Tuples[row][col] {
				cost += r.opts.Cost.weight(row, r.work.Schema.Attrs[col].Name)
			}
		}
	}
	res.Cost = cost
	return res, nil
}

// pass runs one detect-resolve iteration and returns the number of applied
// changes.
func (r *repairer) pass() (int, error) {
	var allViolations []violationRef
	for ci, c := range r.sigma {
		vs, err := detect.FindDetailed(r.work, c)
		if err != nil {
			return 0, err
		}
		for _, v := range vs {
			allViolations = append(allViolations, violationRef{cfd: ci, v: v})
		}
	}
	if len(allViolations) == 0 {
		return 0, nil
	}
	before := len(r.changes)
	plan := r.buildPlan(allViolations)
	r.applyPlan(plan)
	applied := len(r.changes) - before
	if applied == 0 {
		// The plan proposed only values the cells already hold (possible
		// when forces conflict); break the LHS of every remaining
		// violation to guarantee progress.
		r.breakAll(allViolations)
		applied = len(r.changes) - before
	}
	return applied, nil
}

type violationRef struct {
	cfd int
	v   core.Violation
}
