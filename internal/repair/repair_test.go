package repair

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/relation"
)

// TestSection6Example reproduces the paper's Section 6 example showing
// that CFD repair sometimes MUST modify LHS attributes: attr(R) = (A,B,C),
// I = {(a1,b1,c1), (a1,b2,c2)}, Σ = {(A→B, (_,_)), (C→B, {(c1,b1),(c2,b2)})}.
// No RHS-only repair exists; the paper proves any repair touches the LHS
// of some embedded FD.
func TestSection6Example(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attr("A"), relation.Attr("B"), relation.Attr("C"))
	rel := relation.New(schema)
	rel.MustInsert("a1", "b1", "c1")
	rel.MustInsert("a1", "b2", "c2")

	sigma := []*core.CFD{
		core.MustCFD([]string{"A"}, []string{"B"},
			core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}}),
		core.MustCFD([]string{"C"}, []string{"B"},
			core.PatternRow{X: []core.Pattern{core.C("c1")}, Y: []core.Pattern{core.C("b1")}},
			core.PatternRow{X: []core.Pattern{core.C("c2")}, Y: []core.Pattern{core.C("b2")}}),
	}
	// Sanity: I violates Σ.
	if ok, _ := core.SatisfiesSet(rel, sigma); ok {
		t.Fatal("the Section 6 instance should violate Σ")
	}

	res, err := Repair(rel, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("repair failed to satisfy Σ; changes: %v", res.Changes)
	}
	// The paper's point: some change must hit a LHS attribute (A or C).
	touchedLHS := false
	for _, ch := range res.Changes {
		if ch.Attr == "A" || ch.Attr == "C" {
			touchedLHS = true
		}
	}
	if !touchedLHS {
		t.Errorf("no LHS attribute was modified, but the paper proves it is necessary; changes: %v", res.Changes)
	}
	// The input must not be mutated.
	if rel.Tuples[0][1] != "b1" || rel.Tuples[1][1] != "b2" {
		t.Error("Repair mutated its input")
	}
}

// TestConstViolationEnforcesRHS: the cheap, common case — a constant
// violation is fixed by writing the pattern constant.
func TestConstViolationEnforcesRHS(t *testing.T) {
	schema := relation.MustSchema("R", relation.Attr("AC"), relation.Attr("CT"))
	rel := relation.New(schema)
	rel.MustInsert("908", "NYC") // must be MH
	rel.MustInsert("908", "MH")

	sigma := []*core.CFD{core.MustCFD([]string{"AC"}, []string{"CT"},
		core.PatternRow{X: []core.Pattern{core.C("908")}, Y: []core.Pattern{core.C("MH")}})}

	res, err := Repair(rel, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatal("repair must satisfy Σ")
	}
	if res.Repaired.Tuples[0][1] != "MH" {
		t.Errorf("tuple 0 CT = %q, want MH", res.Repaired.Tuples[0][1])
	}
	if res.Cost != 1 {
		t.Errorf("cost = %v, want 1 (single cell)", res.Cost)
	}
}

// TestVariableViolationPluralityWins: equalization picks the majority
// value, restoring the clean value when noise is the minority.
func TestVariableViolationPluralityWins(t *testing.T) {
	schema := relation.MustSchema("R", relation.Attr("ZIP"), relation.Attr("ST"))
	rel := relation.New(schema)
	rel.MustInsert("07974", "NJ")
	rel.MustInsert("07974", "NJ")
	rel.MustInsert("07974", "IL") // the noisy one
	sigma := []*core.CFD{core.MustCFD([]string{"ZIP"}, []string{"ST"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}})}

	res, err := Repair(rel, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatal("repair must satisfy Σ")
	}
	for i := 0; i < 3; i++ {
		if res.Repaired.Tuples[i][1] != "NJ" {
			t.Errorf("tuple %d ST = %q, want NJ (plurality)", i, res.Repaired.Tuples[i][1])
		}
	}
	if res.Cost != 1 {
		t.Errorf("cost = %v, want 1", res.Cost)
	}
}

// TestInconsistentSigmaRejected: no repair exists for inconsistent Σ.
func TestInconsistentSigmaRejected(t *testing.T) {
	schema := relation.MustSchema("R", relation.Attr("A"), relation.Attr("B"))
	rel := relation.New(schema)
	rel.MustInsert("x", "y")
	sigma := []*core.CFD{core.MustCFD([]string{"A"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.C("b")}},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.C("c")}})}
	if _, err := Repair(rel, sigma, Options{}); err == nil {
		t.Error("inconsistent Σ must be rejected")
	}
}

// TestRepairCleanInstanceIsNoop: a satisfying instance needs no changes.
func TestRepairCleanInstanceIsNoop(t *testing.T) {
	data := gen.GenerateTax(gen.TaxConfig{Size: 300, Noise: 0, Seed: 1})
	res, err := Repair(data.Dirty, gen.SemanticCFDs(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied || len(res.Changes) != 0 || res.Cost != 0 || res.Passes != 0 {
		t.Errorf("noop repair: satisfied=%v changes=%d cost=%v passes=%d",
			res.Satisfied, len(res.Changes), res.Cost, res.Passes)
	}
}

// TestRepairTaxWorkload: the end-to-end §6 scenario — noisy tax records
// against the semantic CFD set. The repair must certify I′ ⊨ Σ, and the
// plurality heuristic should restore a healthy share of the injected
// errors to their ground-truth values.
func TestRepairTaxWorkload(t *testing.T) {
	data := gen.GenerateTax(gen.TaxConfig{Size: 2000, Noise: 0.04, Seed: 9})
	sigma := gen.SemanticCFDs()
	if ok, _ := core.SatisfiesSet(data.Dirty, sigma); ok {
		t.Fatal("noisy instance should violate Σ")
	}
	res, err := Repair(data.Dirty, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("repair did not satisfy Σ after %d passes (%d changes)", res.Passes, len(res.Changes))
	}
	// Ground-truth restoration rate.
	restored, total := 0, 0
	for _, ch := range data.Changes {
		col := data.Dirty.Schema.MustIndex(ch.Attr)
		total++
		if res.Repaired.Tuples[ch.Row][col] == ch.From {
			restored++
		}
	}
	if total == 0 {
		t.Fatal("no injected changes")
	}
	rate := float64(restored) / float64(total)
	t.Logf("restored %d/%d injected errors (%.0f%%), cost %.0f, %d passes",
		restored, total, rate*100, res.Cost, res.Passes)
	if rate < 0.5 {
		t.Errorf("restoration rate %.2f below 0.5 — plurality heuristic regressed", rate)
	}
}

// TestRepairWithCostModel: a high weight steers changes away from an
// attribute when an alternative fix exists.
func TestRepairWithCostModel(t *testing.T) {
	schema := relation.MustSchema("R",
		relation.Attr("A"), relation.Attr("B"), relation.Attr("C"))
	rel := relation.New(schema)
	rel.MustInsert("a1", "b1", "c1")
	rel.MustInsert("a1", "b2", "c2")
	sigma := []*core.CFD{
		core.MustCFD([]string{"A"}, []string{"B"},
			core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}}),
		core.MustCFD([]string{"C"}, []string{"B"},
			core.PatternRow{X: []core.Pattern{core.C("c1")}, Y: []core.Pattern{core.C("b1")}},
			core.PatternRow{X: []core.Pattern{core.C("c2")}, Y: []core.Pattern{core.C("b2")}}),
	}
	// Make C expensive: breaking should pick... C is the only constant LHS
	// cell of the C→B patterns, A is the wildcard of A→B. The cost model
	// can't avoid LHS entirely (the paper's point) but the run must still
	// converge and report the weighted cost.
	opts := Options{Cost: &CostModel{Weight: func(row int, attr string) float64 {
		if attr == "C" {
			return 10
		}
		return 1
	}}}
	res, err := Repair(rel, sigma, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatal("repair must satisfy Σ")
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %v", res.Cost)
	}
}

// TestFreshValuesAreInert: fresh placeholders never collide with data and
// never match constant patterns.
func TestFreshValuesAreInert(t *testing.T) {
	r := &repairer{}
	a, b := r.fresh(), r.fresh()
	if a == b {
		t.Error("fresh values must be unique")
	}
	if !strings.HasPrefix(a, "\x00") {
		t.Error("fresh values must carry the NUL prefix so they cannot collide with real data")
	}
}

// TestRepairIdempotent: repairing an already-repaired instance changes
// nothing.
func TestRepairIdempotent(t *testing.T) {
	data := gen.GenerateTax(gen.TaxConfig{Size: 800, Noise: 0.05, Seed: 11})
	sigma := gen.SemanticCFDs()
	first, err := Repair(data.Dirty, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Satisfied {
		t.Fatal("first repair must satisfy Σ")
	}
	second, err := Repair(first.Repaired, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Changes) != 0 {
		t.Errorf("second repair applied %d changes", len(second.Changes))
	}
}
