package repair

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/obs"
	"repro/internal/relation"
)

// This file is the streaming counterpart of the batch algorithm in
// repair.go: a Suggester attaches to a live incremental.Monitor and
// maintains one cost-ranked repair suggestion per live violation,
// updated in O(Δ) from the violation-delta subscription
// (Monitor.TrackDeltas) and the group-statistics substrate
// (Monitor.TrackGroups) — the same two feeds the streaming miner uses.
// The planning heuristics are the batch algorithm's, re-derived per
// violation instead of per pass:
//
//   - a constant violation suggests forcing the mismatching RHS cells
//     to their pattern constants (Σ is ground truth); when matched rows
//     force conflicting constants — the CFD-specific case where no RHS
//     value works — it suggests breaking the cheapest LHS cell instead;
//   - a variable violation suggests the cheaper of merging the group's
//     minority cells into the target value (the pattern constant when
//     bound, else the live distribution's majority) or breaking the
//     minority tuples out of the group via an LHS cell;
//   - when the configured trust source (typically the streaming miner)
//     reports live confidence below the threshold for a CFD, its data
//     edits give way to a single constraint-relaxation suggestion — the
//     relative-trust loop of Beskales et al., on-stream.
//
// Suggestions are descriptors, not mutations: Plan materializes an
// accepted set into an ordinary ChangeSet that flows through the
// monitor's usual Apply path (WAL, group commit, replication and
// fencing all unchanged). The batch Repair remains as the from-scratch
// oracle the property tests compare convergence against.

// ErrUnknownSuggestion reports a Plan id that names no live suggestion —
// it was never issued, or retired when a later batch resolved (or
// reshaped) its violation. Callers re-fetch the current set and retry.
var ErrUnknownSuggestion = errors.New("unknown suggestion")

// SuggestionKind discriminates what a suggestion proposes.
type SuggestionKind uint8

const (
	// SuggestRHSEdit forces a constant-violating tuple's RHS cells to
	// the pattern constants.
	SuggestRHSEdit SuggestionKind = iota
	// SuggestValueMerge rewrites a conflicting group's minority cells to
	// the group target value.
	SuggestValueMerge
	// SuggestLHSBreak rewrites an LHS cell to a fresh placeholder,
	// breaking the pattern match (the FD-impossible move).
	SuggestLHSBreak
	// SuggestRelax proposes relaxing the CFD itself (add a pattern row
	// or retire it) because live confidence fell below the trust
	// threshold; it has no data edits.
	SuggestRelax
)

func (k SuggestionKind) String() string {
	switch k {
	case SuggestRHSEdit:
		return "rhs-edit"
	case SuggestValueMerge:
		return "value-merge"
	case SuggestLHSBreak:
		return "lhs-break"
	case SuggestRelax:
		return "relax-cfd"
	}
	return fmt.Sprintf("SuggestionKind(%d)", uint8(k))
}

// CellEdit is one proposed cell modification, keyed by the tuple's
// stable monitor key.
type CellEdit struct {
	Key  int64
	Attr string
	From relation.Value
	To   relation.Value
}

// Suggestion is one live, cost-ranked repair proposal, keyed to the
// violation it resolves. IDs are stable for the life of the violation
// ("c<cfd>:<key>" for constant violations, "v<cfd>:<x>" for variable
// ones, "r<cfd>" for relaxations), so a reviewer can accept a set
// across refreshes.
type Suggestion struct {
	ID   string
	CFD  int
	Kind SuggestionKind
	// Cost is the suggestion's estimated repair cost under the cost
	// model: the summed weights of the cells it would modify (a
	// relaxation charges 1 — one constraint edit).
	Cost float64
	// Key is the constant-violating tuple (SuggestRHSEdit, and
	// SuggestLHSBreak planned for a single tuple); 0 otherwise.
	Key int64
	// X is the violating group's X-projection (variable violations).
	X []relation.Value
	// Edits are the concrete cell edits, materialized eagerly for
	// single-tuple suggestions; group-level suggestions materialize
	// theirs at Plan time (membership is not indexed).
	Edits []CellEdit
	// Attr and To describe the group-level edit: the attribute to
	// rewrite and the merge target ("" for an LHS break, whose fresh
	// placeholders are allocated at Plan time).
	Attr string
	To   relation.Value
	// Tuples is the number of cell edits the suggestion implies.
	Tuples int
	// Confidence is the trust source's live confidence (SuggestRelax).
	Confidence float64
	// Reason is a one-line human-readable rationale.
	Reason string
}

// TrustSource supplies live per-FD confidence — the streaming
// discovery.Miner satisfies it. The attribute order of lhs does not
// matter.
type TrustSource interface {
	Confidence(lhs []string, rhs string) (float64, bool)
}

// SuggestOptions configures a Suggester.
type SuggestOptions struct {
	// Cost weighs cell edits (nil = unit cost). The model's row
	// argument receives the tuple's monitor key truncated to int for
	// per-tuple decisions and -1 for group-level estimates.
	Cost *CostModel
	// Trust supplies live per-CFD confidence; nil disables relaxation
	// suggestions.
	Trust TrustSource
	// TrustThreshold: when Trust reports confidence below this for a
	// CFD, its data-edit suggestions are replaced by one constraint-
	// relaxation suggestion. 0 (the default) never relaxes.
	TrustThreshold float64
}

// Suggester maintains live repair suggestions over a Monitor. Attach
// with NewSuggester, advance with Refresh (typically once per applied
// batch or per poll), detach with Close. All methods are safe for
// concurrent use with monitor mutations.
type Suggester struct {
	mu    sync.Mutex
	m     *incremental.Monitor
	sigma []*core.CFD
	opts  SuggestOptions
	sub   *incremental.DeltaSub
	hub   *incremental.GroupStats

	// pairBase[ci] is the first of len(RHS) contiguous tracked pairs of
	// CFD ci; cfdOfPair inverts the mapping.
	pairBase  []int
	cfdOfPair []int
	yIdx      [][]int // per CFD, schema indexes of RHS

	sugs    map[string]*Suggestion
	relaxed []bool
	version uint64
	sorted  []Suggestion // cost-ranked cache, nil when stale
	freshN  int
	drain   []incremental.GroupDelta
	closed  bool

	metRefresh *obs.Histogram
	metTouched *obs.Counter
	metLive    *obs.Gauge
	metRelaxed *obs.Gauge
}

// NewSuggester attaches a streaming repair suggester to the monitor:
// the monitored Σ's (LHS, RHS-attr) pairs are registered with the
// group-statistics substrate, a violation-delta subscription is opened,
// and the current violation set is planned. The first Refresh happens
// inside the constructor, so Suggestions is immediately complete.
func NewSuggester(m *incremental.Monitor, opts SuggestOptions) (*Suggester, error) {
	sigma := m.Sigma()
	s := &Suggester{
		m:       m,
		sigma:   sigma,
		opts:    opts,
		sugs:    make(map[string]*Suggestion),
		relaxed: make([]bool, len(sigma)),
	}
	var pairs []incremental.AttrPair
	for ci, cfd := range sigma {
		s.pairBase = append(s.pairBase, len(pairs))
		yIdx := make([]int, len(cfd.RHS))
		for yi, a := range cfd.RHS {
			j, ok := m.Schema().Index(a)
			if !ok {
				return nil, fmt.Errorf("repair: CFD %d: schema %q has no attribute %q", ci, m.Schema().Name, a)
			}
			yIdx[yi] = j
			pairs = append(pairs, incremental.AttrPair{X: cfd.LHS, A: a})
			s.cfdOfPair = append(s.cfdOfPair, ci)
		}
		s.yIdx = append(s.yIdx, yIdx)
	}
	hub, err := m.TrackGroups(pairs)
	if err != nil {
		return nil, err
	}
	s.hub = hub
	s.sub = m.TrackDeltas()
	reg := m.Metrics()
	s.metRefresh = reg.DurationHistogram("cfd_suggester_refresh_seconds", "Duration of one Suggester.Refresh pass (drain + re-plan).")
	s.metTouched = reg.Counter("cfd_suggester_replanned_total", "Violations re-planned across Refresh passes.")
	s.metLive = reg.Gauge("cfd_suggestions", "Live repair suggestions currently maintained.")
	s.metRelaxed = reg.Gauge("cfd_suggester_relaxed_cfds", "CFDs currently below the trust threshold (relaxation suggested).")
	s.Refresh()
	return s, nil
}

// Close detaches the suggester from the monitor's apply path. The last
// refreshed suggestions stay readable.
func (s *Suggester) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.m.UntrackGroups(s.hub)
	s.m.UntrackDeltas(s.sub)
}

// Refresh drains the violations touched since the last call and
// re-plans exactly their suggestions — O(Δ), not O(|I|) — then
// re-evaluates the trust threshold per CFD. It returns the number of
// violations re-planned.
func (s *Suggester) Refresh() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	n := 0
	touched := s.sub.Drain()
	s.drain = s.hub.Drain(s.drain[:0])
	for ci := range touched {
		t := &touched[ci]
		for _, k := range t.Consts {
			s.refreshConst(ci, k)
			n++
		}
		for _, x := range t.Vars {
			s.refreshVar(ci, x)
			n++
		}
	}
	// Group-stat deltas catch what presence flips cannot: a group whose
	// majority (and therefore merge target or cost) shifted while it
	// stayed violating throughout.
	for i := range s.drain {
		d := &s.drain[i]
		if d.X == nil {
			continue // destroyed group: its retirement came through the view delta
		}
		s.refreshVar(s.cfdOfPair[d.Pair], d.X)
		n++
	}
	s.refreshTrust()
	s.metTouched.Add(uint64(n))
	s.metLive.Set(int64(len(s.sugs)))
	s.metRefresh.ObserveSince(start)
	return n
}

// Version is the suggestion-set version: it advances only when the set
// actually changes, so it doubles as an ETag for pollers.
func (s *Suggester) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Suggestions returns the live suggestion set, cost-ranked ascending
// (ties by ID), as of the last Refresh. The slice and its interior
// slices are shared — treat them as read-only.
func (s *Suggester) Suggestions() []Suggestion {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rankedLocked()
}

func (s *Suggester) rankedLocked() []Suggestion {
	if s.sorted == nil {
		s.sorted = make([]Suggestion, 0, len(s.sugs))
		for _, sg := range s.sugs {
			s.sorted = append(s.sorted, *sg)
		}
		sort.Slice(s.sorted, func(i, j int) bool {
			if s.sorted[i].Cost != s.sorted[j].Cost {
				return s.sorted[i].Cost < s.sorted[j].Cost
			}
			return s.sorted[i].ID < s.sorted[j].ID
		})
	}
	return s.sorted
}

// bump invalidates the ranked cache and advances the version.
func (s *Suggester) bump() {
	s.version++
	s.sorted = nil
}

func (s *Suggester) put(sug *Suggestion) {
	if old, ok := s.sugs[sug.ID]; ok && old.equal(sug) {
		return
	}
	s.sugs[sug.ID] = sug
	s.bump()
}

func (s *Suggester) dropID(id string) {
	if _, ok := s.sugs[id]; ok {
		delete(s.sugs, id)
		s.bump()
	}
}

func (a *Suggestion) equal(b *Suggestion) bool {
	if a.Kind != b.Kind || a.Cost != b.Cost || a.Attr != b.Attr || a.To != b.To ||
		a.Tuples != b.Tuples || a.Confidence != b.Confidence || len(a.Edits) != len(b.Edits) {
		return false
	}
	for i := range a.Edits {
		if a.Edits[i] != b.Edits[i] {
			return false
		}
	}
	return true
}

func constID(ci int, key int64) string {
	return "c" + strconv.Itoa(ci) + ":" + strconv.FormatInt(key, 10)
}

func varID(ci int, x []relation.Value) string {
	return "v" + strconv.Itoa(ci) + ":" + relation.EncodeKey(x)
}

func relaxID(ci int) string { return "r" + strconv.Itoa(ci) }

func (s *Suggester) weight(key int64, attr string) float64 {
	return s.opts.Cost.weight(int(key), attr)
}

// matchX reports whether the row's X patterns match the projection.
func matchX(row core.PatternRow, xs []relation.Value) bool {
	for i, p := range row.X {
		if p.Kind == core.Const && p.Val != xs[i] {
			return false
		}
	}
	return true
}

// refreshConst re-plans the suggestion of one (cfd, tuple) constant
// violation against the authoritative state: gone → dropped, live →
// re-derived.
func (s *Suggester) refreshConst(ci int, key int64) {
	id := constID(ci, key)
	if s.relaxed[ci] {
		s.dropID(id)
		return
	}
	st, live := s.m.ViolationsFor(key)
	if !live || len(st.PerCFD[ci].ConstTuples) == 0 {
		s.dropID(id)
		return
	}
	if sug := s.planConst(ci, key); sug != nil {
		s.put(sug)
	} else {
		s.dropID(id)
	}
}

// planConst derives the suggestion for a constant violation: force the
// mismatching RHS cells to their pattern constants, or break the LHS
// when matched rows force conflicting constants.
func (s *Suggester) planConst(ci int, key int64) *Suggestion {
	t, ok := s.m.Get(key)
	if !ok {
		return nil
	}
	cfd := s.sigma[ci]
	schema := s.m.Schema()
	xs := make([]relation.Value, len(cfd.LHS))
	for i, a := range cfd.LHS {
		xs[i] = t[schema.MustIndex(a)]
	}
	forced := make([]relation.Value, len(cfd.RHS))
	bound := make([]bool, len(cfd.RHS))
	conflict := false
	var matched []core.PatternRow
	for _, row := range cfd.Tableau {
		if !matchX(row, xs) {
			continue
		}
		matched = append(matched, row)
		for yi := range cfd.RHS {
			if row.Y[yi].Kind != core.Const {
				continue
			}
			if bound[yi] && forced[yi] != row.Y[yi].Val {
				conflict = true
				continue
			}
			bound[yi], forced[yi] = true, row.Y[yi].Val
		}
	}
	if conflict {
		return s.planBreakTuple(ci, key, matched)
	}
	var edits []CellEdit
	cost := 0.0
	for yi, a := range cfd.RHS {
		cur := t[s.yIdx[ci][yi]]
		if !bound[yi] || cur == forced[yi] {
			continue
		}
		edits = append(edits, CellEdit{Key: key, Attr: a, From: cur, To: forced[yi]})
		cost += s.weight(key, a)
	}
	if len(edits) == 0 {
		return nil
	}
	return &Suggestion{
		ID: constID(ci, key), CFD: ci, Kind: SuggestRHSEdit,
		Cost: cost, Key: key, Edits: edits, Tuples: len(edits),
		Reason: fmt.Sprintf("tuple %d violates a pattern constant of CFD %d: force the RHS to the pattern value", key, ci),
	}
}

// planBreakTuple suggests breaking one tuple's pattern match via its
// cheapest eligible LHS cell.
func (s *Suggester) planBreakTuple(ci int, key int64, matched []core.PatternRow) *Suggestion {
	cfd := s.sigma[ci]
	attr, w, ok := s.breakCell(cfd, matched, key)
	if !ok {
		return nil
	}
	return &Suggestion{
		ID: constID(ci, key), CFD: ci, Kind: SuggestLHSBreak,
		Cost: w, Key: key, Attr: attr, Tuples: 1,
		Reason: fmt.Sprintf("matched rows of CFD %d force conflicting constants for tuple %d: no RHS value works, break the LHS match on %s", ci, key, attr),
	}
}

// breakCell picks the cheapest LHS cell able to break a pattern match:
// constant-pattern cells first (any fresh value un-matches the row),
// then wildcard cells (the fresh value splits the tuple from its
// X-group). Attributes with finite domains are skipped — they cannot
// hold a fresh placeholder. key < 0 means a group-level estimate.
func (s *Suggester) breakCell(cfd *core.CFD, matched []core.PatternRow, key int64) (string, float64, bool) {
	schema := s.m.Schema()
	best, bestW := "", 0.0
	pick := func(kind core.PatternKind) bool {
		for _, row := range matched {
			for i, a := range cfd.LHS {
				if row.X[i].Kind != kind || schema.Domain(a).Finite() {
					continue
				}
				if w := s.weight(key, a); best == "" || w < bestW {
					best, bestW = a, w
				}
			}
		}
		return best != ""
	}
	if pick(core.Const) {
		return best, bestW, true
	}
	if pick(core.Wildcard) {
		return best, bestW, true
	}
	return "", 0, false
}

// refreshVar re-plans the suggestion of one (cfd, X-group) variable
// violation against the authoritative state.
func (s *Suggester) refreshVar(ci int, x []relation.Value) {
	id := varID(ci, x)
	if s.relaxed[ci] {
		s.dropID(id)
		return
	}
	if !s.m.ViolatingGroup(ci, x) {
		s.dropID(id)
		return
	}
	if sug := s.planVar(ci, x); sug != nil {
		s.put(sug)
	} else {
		s.dropID(id)
	}
}

// varTargets derives a violating group's per-RHS-attribute target
// values: the pattern constant when some matched row binds one, the
// live distribution's majority otherwise. conflict reports matched
// rows forcing contradictory constants (merge impossible).
func (s *Suggester) varTargets(ci int, x []relation.Value, xkey string) (targets []relation.Value, matched []core.PatternRow, conflict bool) {
	cfd := s.sigma[ci]
	targets = make([]relation.Value, len(cfd.RHS))
	bound := make([]bool, len(cfd.RHS))
	for _, row := range cfd.Tableau {
		if !matchX(row, x) {
			continue
		}
		matched = append(matched, row)
		for yi := range cfd.RHS {
			if row.Y[yi].Kind != core.Const {
				continue
			}
			if bound[yi] && targets[yi] != row.Y[yi].Val {
				conflict = true
				continue
			}
			bound[yi], targets[yi] = true, row.Y[yi].Val
		}
	}
	for yi := range cfd.RHS {
		if bound[yi] {
			continue
		}
		st, ok := s.hub.Stat(s.pairBase[ci]+yi, xkey)
		if !ok {
			return nil, nil, false
		}
		targets[yi] = st.Top
	}
	return targets, matched, conflict
}

// planVar derives the suggestion for a variable violation: the cheaper
// of merging minority cells into the target values or breaking the
// minority tuples' LHS match.
func (s *Suggester) planVar(ci int, x []relation.Value) *Suggestion {
	cfd := s.sigma[ci]
	xkey := s.hub.KeyOf(x)
	targets, matched, conflict := s.varTargets(ci, x, xkey)
	if targets == nil || len(matched) == 0 {
		return nil
	}
	mergeCost, mergeEdits := 0.0, 0
	maxMinority := 0
	var attr string
	var to relation.Value
	for yi, a := range cfd.RHS {
		pair := s.pairBase[ci] + yi
		st, ok := s.hub.Stat(pair, xkey)
		if !ok {
			return nil
		}
		minority := st.Support - s.hub.Count(pair, xkey, targets[yi])
		if minority <= 0 {
			continue
		}
		mergeCost += float64(minority) * s.weight(-1, a)
		mergeEdits += minority
		if minority > maxMinority {
			maxMinority = minority
		}
		if attr == "" {
			attr, to = a, targets[yi]
		}
	}
	if mergeEdits == 0 {
		return nil
	}
	id := varID(ci, x)
	breakAttr, breakW, canBreak := s.breakCell(cfd, matched, -1)
	breakCost := float64(maxMinority) * breakW
	if conflict || (canBreak && breakCost < mergeCost) {
		if !canBreak {
			return nil
		}
		return &Suggestion{
			ID: id, CFD: ci, Kind: SuggestLHSBreak,
			Cost: breakCost, X: x, Attr: breakAttr, Tuples: maxMinority,
			Reason: fmt.Sprintf("group (%s) disagrees on the RHS of CFD %d: break the minority tuples' LHS match on %s", relation.EncodeKey(x), ci, breakAttr),
		}
	}
	return &Suggestion{
		ID: id, CFD: ci, Kind: SuggestValueMerge,
		Cost: mergeCost, X: x, Attr: attr, To: to, Tuples: mergeEdits,
		Reason: fmt.Sprintf("group (%s) disagrees on the RHS of CFD %d: merge the minority cells into %q", relation.EncodeKey(x), ci, to),
	}
}

// refreshTrust re-evaluates each CFD against the trust threshold and
// swaps between data-edit and relaxation mode on crossings.
func (s *Suggester) refreshTrust() {
	if s.opts.Trust == nil || s.opts.TrustThreshold <= 0 {
		return
	}
	relaxed := int64(0)
	for ci, cfd := range s.sigma {
		worst, any := 1.0, false
		for _, a := range cfd.RHS {
			if c, ok := s.opts.Trust.Confidence(cfd.LHS, a); ok {
				any = true
				if c < worst {
					worst = c
				}
			}
		}
		if !any {
			continue
		}
		if worst < s.opts.TrustThreshold {
			relaxed++
			if !s.relaxed[ci] {
				s.relaxed[ci] = true
				for id, sg := range s.sugs {
					if sg.CFD == ci && sg.Kind != SuggestRelax {
						delete(s.sugs, id)
						s.bump()
					}
				}
			}
			s.put(&Suggestion{
				ID: relaxID(ci), CFD: ci, Kind: SuggestRelax,
				Cost: 1, Confidence: worst,
				Reason: fmt.Sprintf("live confidence %.3f for CFD %d is below the trust threshold %.3f: relax the constraint (add a pattern row for the dominant conflicting groups, or retire it) instead of editing data", worst, ci, s.opts.TrustThreshold),
			})
			continue
		}
		if s.relaxed[ci] {
			s.relaxed[ci] = false
			s.dropID(relaxID(ci))
			s.reseed(ci)
		}
	}
	s.metRelaxed.Set(relaxed)
}

// reseed re-plans every live violation of one CFD from the view — the
// re-entry path when a CFD's confidence recovers above the threshold.
func (s *Suggester) reseed(ci int) {
	st := s.m.Violations()
	if ci >= len(st.PerCFD) {
		return
	}
	v := st.PerCFD[ci]
	for _, k := range v.ConstTuples {
		s.refreshConst(ci, k)
	}
	for _, x := range v.VariableKeys {
		s.refreshVar(ci, x)
	}
}

func (s *Suggester) fresh() relation.Value {
	s.freshN++
	return fmt.Sprintf("\x00unk:s%d", s.freshN)
}

// Plan materializes an accepted suggestion set into a ChangeSet of
// ordinary updates against the current instance, plus the concrete
// cell-edit list for review. Group-level suggestions enumerate their
// members here (an O(|I|) integer scan — the apply path is human-paced,
// the refresh path never pays it). Relaxation suggestions are
// constraint changes, not data edits, and are rejected.
func (s *Suggester) Plan(ids []string) (*incremental.ChangeSet, []CellEdit, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cs incremental.ChangeSet
	var edits []CellEdit
	add := func(key int64, attr string, to relation.Value) {
		t, ok := s.m.Get(key)
		if !ok {
			return
		}
		from := t[s.m.Schema().MustIndex(attr)]
		if from == to {
			return
		}
		cs.Update(key, attr, to)
		edits = append(edits, CellEdit{Key: key, Attr: attr, From: from, To: to})
	}
	for _, id := range ids {
		sug, ok := s.sugs[id]
		if !ok {
			return nil, nil, fmt.Errorf("repair: %w: %q", ErrUnknownSuggestion, id)
		}
		switch sug.Kind {
		case SuggestRelax:
			return nil, nil, fmt.Errorf("repair: suggestion %q proposes a constraint change, not a data edit; edit Σ instead", id)
		case SuggestRHSEdit:
			for _, e := range sug.Edits {
				add(e.Key, e.Attr, e.To)
			}
		case SuggestLHSBreak:
			if sug.X == nil {
				add(sug.Key, sug.Attr, s.fresh())
				continue
			}
			keys, targets, err := s.groupMembers(sug.CFD, sug.X)
			if err != nil {
				return nil, nil, err
			}
			for _, k := range keys {
				if s.memberAgrees(sug.CFD, k, targets) {
					continue
				}
				// A distinct placeholder per tuple: two broken tuples
				// sharing one would just form a new conflicting group.
				add(k, sug.Attr, s.fresh())
			}
		case SuggestValueMerge:
			keys, targets, err := s.groupMembers(sug.CFD, sug.X)
			if err != nil {
				return nil, nil, err
			}
			cfd := s.sigma[sug.CFD]
			for _, k := range keys {
				t, ok := s.m.Get(k)
				if !ok {
					continue
				}
				for yi, a := range cfd.RHS {
					if cur := t[s.yIdx[sug.CFD][yi]]; cur != targets[yi] {
						cs.Update(k, a, targets[yi])
						edits = append(edits, CellEdit{Key: k, Attr: a, From: cur, To: targets[yi]})
					}
				}
			}
		}
	}
	return &cs, edits, nil
}

// groupMembers enumerates a violating group's member keys and its
// current per-RHS target values.
func (s *Suggester) groupMembers(ci int, x []relation.Value) ([]int64, []relation.Value, error) {
	targets, _, _ := s.varTargets(ci, x, s.hub.KeyOf(x))
	if targets == nil {
		return nil, nil, fmt.Errorf("repair: group (%s) of CFD %d is gone", relation.EncodeKey(x), ci)
	}
	keys, err := s.m.MatchingKeys(s.sigma[ci].LHS, x)
	if err != nil {
		return nil, nil, err
	}
	return keys, targets, nil
}

// memberAgrees reports whether a member tuple already holds every
// target RHS value.
func (s *Suggester) memberAgrees(ci int, key int64, targets []relation.Value) bool {
	t, ok := s.m.Get(key)
	if !ok {
		return true
	}
	for yi := range targets {
		if t[s.yIdx[ci][yi]] != targets[yi] {
			return false
		}
	}
	return true
}
