package repair

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/incremental"
	"repro/internal/relation"
)

// suggestFixture builds a randomized dirty instance over a 4-attribute
// schema with two disjoint CFDs: a pure FD A → B (variable violations)
// and a pattern CFD C → D with constant rows (constant + variable
// violations). Dirt corrupts RHS cells only, so every violation is
// reachable by the suggester's RHS-edit/value-merge moves and the
// batch oracle must certify the same instance repairable.
type suggestFixture struct {
	schema *relation.Schema
	sigma  []*core.CFD
	dirty  []relation.Tuple
}

func newSuggestFixture(t *testing.T, rng *rand.Rand, n int) *suggestFixture {
	t.Helper()
	schema := relation.MustSchema("R",
		relation.Attr("A"), relation.Attr("B"),
		relation.Attr("C"), relation.Attr("D"))
	fd := core.MustCFD([]string{"A"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}})
	const patterns = 6
	rows := make([]core.PatternRow, patterns)
	for j := 0; j < patterns; j++ {
		rows[j] = core.PatternRow{
			X: []core.Pattern{core.C(fmt.Sprintf("c%d", j))},
			Y: []core.Pattern{core.C(fmt.Sprintf("d%d", j))},
		}
	}
	pat := core.MustCFD([]string{"C"}, []string{"D"}, rows...)

	dirty := make([]relation.Tuple, n)
	for i := range dirty {
		a := rng.Intn(n / 8)
		c := rng.Intn(patterns + 2) // some C-values fall outside the tableau
		dirty[i] = relation.Tuple{
			fmt.Sprintf("a%d", a), fmt.Sprintf("b%d", a%7),
			fmt.Sprintf("c%d", c), fmt.Sprintf("d%d", c),
		}
	}
	// Corrupt ~15% of the RHS cells.
	for i := range dirty {
		if rng.Intn(100) < 15 {
			if rng.Intn(2) == 0 {
				dirty[i][1] = fmt.Sprintf("bx%d", rng.Intn(4))
			} else {
				dirty[i][3] = fmt.Sprintf("dx%d", rng.Intn(4))
			}
		}
	}
	return &suggestFixture{schema: schema, sigma: []*core.CFD{fd, pat}, dirty: dirty}
}

func (f *suggestFixture) monitor(t *testing.T) *incremental.Monitor {
	t.Helper()
	m, err := incremental.New(f.schema, f.sigma, incremental.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(f.dirty); i += 64 {
		var cs incremental.ChangeSet
		for j := i; j < i+64 && j < len(f.dirty); j++ {
			cs.Insert(f.dirty[j])
		}
		if _, err := m.Apply(&cs); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func (f *suggestFixture) relation() *relation.Relation {
	rel := relation.New(f.schema)
	for _, tp := range f.dirty {
		rel.Tuples = append(rel.Tuples, tp.Clone())
	}
	return rel
}

// drive applies the top suggestion per round until the suggester runs
// dry, asserting the live violation count strictly decreases every
// round, and returns the number of rounds.
func drive(t *testing.T, m *incremental.Monitor, sg *Suggester) int {
	t.Helper()
	prev := m.ViolationCount()
	rounds := 0
	budget := int(prev)*4 + 16
	for {
		sg.Refresh()
		sugs := sg.Suggestions()
		if len(sugs) == 0 {
			break
		}
		if rounds++; rounds > budget {
			t.Fatalf("no convergence after %d rounds; %d violations live", rounds, m.ViolationCount())
		}
		cs, edits, err := sg.Plan([]string{sugs[0].ID})
		if err != nil {
			t.Fatal(err)
		}
		if len(edits) == 0 {
			t.Fatalf("round %d: top suggestion %q planned no edits", rounds, sugs[0].ID)
		}
		if _, err := m.Apply(cs); err != nil {
			t.Fatal(err)
		}
		cur := m.ViolationCount()
		if cur >= prev {
			t.Fatalf("round %d: violations did not decrease: %d -> %d (applied %q)", rounds, prev, cur, sugs[0].ID)
		}
		prev = cur
	}
	return rounds
}

// TestSuggestConvergesRandomDirt is the randomized-dirt convergence
// property: applying the top suggestion per round reduces the live
// violation count monotonically to zero, and the batch Repair oracle
// certifies the same dirty instance repairable.
func TestSuggestConvergesRandomDirt(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			f := newSuggestFixture(t, rand.New(rand.NewSource(seed)), 400)

			// Batch oracle on the same dirty instance.
			res, err := Repair(f.relation(), f.sigma, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Satisfied {
				t.Fatalf("batch oracle did not reach satisfaction (passes=%d)", res.Passes)
			}

			m := f.monitor(t)
			defer m.Close()
			if m.ViolationCount() == 0 {
				t.Fatal("fixture produced no violations")
			}
			sg, err := NewSuggester(m, SuggestOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer sg.Close()
			rounds := drive(t, m, sg)
			if got := m.ViolationCount(); got != 0 {
				t.Fatalf("after %d rounds: %d violations remain", rounds, got)
			}
			if !m.Satisfied() {
				t.Fatal("monitor not satisfied after convergence")
			}
			sg.Refresh()
			if left := sg.Suggestions(); len(left) != 0 {
				t.Fatalf("%d suggestions remain on a satisfied instance: %+v", len(left), left[0])
			}
		})
	}
}

// TestSuggesterTracksLiveSet checks the O(Δ) maintenance directly:
// suggestions appear when a batch introduces violations, carry concrete
// cost-ranked fixes, and retire when an unrelated-path batch repairs
// the data out from under the suggester.
func TestSuggesterTracksLiveSet(t *testing.T) {
	f := newSuggestFixture(t, rand.New(rand.NewSource(7)), 200)
	m := f.monitor(t)
	defer m.Close()
	sg, err := NewSuggester(m, SuggestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	sg.Refresh()
	before := len(sg.Suggestions())
	v0 := sg.Version()

	// A batch that forces one fresh constant violation: C in the
	// tableau, D wrong.
	var cs incremental.ChangeSet
	cs.Insert(relation.Tuple{"anew", "bnew", "c0", "dwrong"})
	if _, err := m.Apply(&cs); err != nil {
		t.Fatal(err)
	}
	if n := sg.Refresh(); n == 0 {
		t.Fatal("refresh after a violating batch re-planned nothing")
	}
	after := sg.Suggestions()
	if len(after) <= before {
		t.Fatalf("suggestion count did not grow: %d -> %d", before, len(after))
	}
	if sg.Version() == v0 {
		t.Fatal("version did not advance")
	}
	for i := 1; i < len(after); i++ {
		if after[i].Cost < after[i-1].Cost {
			t.Fatalf("suggestions not cost-ranked at %d: %f < %f", i, after[i].Cost, after[i-1].Cost)
		}
	}

	// Repair that tuple by hand; its suggestion must retire.
	key := m.NextKey() - 1
	var fix incremental.ChangeSet
	fix.Update(key, "D", "d0")
	if _, err := m.Apply(&fix); err != nil {
		t.Fatal(err)
	}
	sg.Refresh()
	for _, s := range sg.Suggestions() {
		if s.Key == key && s.Kind == SuggestRHSEdit {
			t.Fatalf("suggestion %q survived the fix", s.ID)
		}
	}
}

// fakeTrust is a settable TrustSource.
type fakeTrust struct {
	mu   sync.Mutex
	conf float64
}

func (f *fakeTrust) Confidence(lhs []string, rhs string) (float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.conf, true
}

// TestSuggesterRelaxesLowTrustCFD checks the relative-trust loop: when
// confidence drops below the threshold the CFD's data edits give way to
// one relaxation suggestion, and recovery reseeds the data edits.
func TestSuggesterRelaxesLowTrustCFD(t *testing.T) {
	f := newSuggestFixture(t, rand.New(rand.NewSource(11)), 200)
	m := f.monitor(t)
	defer m.Close()
	trust := &fakeTrust{conf: 0.99}
	sg, err := NewSuggester(m, SuggestOptions{Trust: trust, TrustThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	sg.Refresh()
	dataSugs := len(sg.Suggestions())
	if dataSugs == 0 {
		t.Fatal("no data suggestions on a dirty instance")
	}
	for _, s := range sg.Suggestions() {
		if s.Kind == SuggestRelax {
			t.Fatal("relaxation suggested above the threshold")
		}
	}

	trust.mu.Lock()
	trust.conf = 0.5
	trust.mu.Unlock()
	sg.Refresh()
	relax := 0
	for _, s := range sg.Suggestions() {
		switch s.Kind {
		case SuggestRelax:
			relax++
			if s.Confidence != 0.5 {
				t.Fatalf("relaxation carries confidence %f, want 0.5", s.Confidence)
			}
		default:
			t.Fatalf("data suggestion %q survived below the threshold", s.ID)
		}
	}
	if relax != len(f.sigma) {
		t.Fatalf("got %d relaxation suggestions, want one per CFD (%d)", relax, len(f.sigma))
	}
	if _, _, err := sg.Plan([]string{sg.Suggestions()[0].ID}); err == nil {
		t.Fatal("planning a relaxation suggestion should fail")
	}

	trust.mu.Lock()
	trust.conf = 0.99
	trust.mu.Unlock()
	sg.Refresh()
	if got := len(sg.Suggestions()); got != dataSugs {
		t.Fatalf("recovery reseeded %d suggestions, want %d", got, dataSugs)
	}
}

// TestSuggesterConcurrentRefresh hammers Refresh/Suggestions against
// concurrent writers, then quiesces and drives the instance to zero —
// the -race half of the convergence gate.
func TestSuggesterConcurrentRefresh(t *testing.T) {
	f := newSuggestFixture(t, rand.New(rand.NewSource(3)), 300)
	m := f.monitor(t)
	defer m.Close()
	sg, err := NewSuggester(m, SuggestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var cs incremental.ChangeSet
				key := int64(rng.Intn(len(f.dirty)))
				if i%2 == 0 {
					cs.Update(key, "B", fmt.Sprintf("bx%d", rng.Intn(4)))
				} else {
					cs.Update(key, "D", fmt.Sprintf("d%d", rng.Intn(6)))
				}
				if _, err := m.Apply(&cs); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		sg.Refresh()
		_ = sg.Suggestions()
		_ = sg.Version()
	}
	close(done)
	wg.Wait()

	rounds := drive(t, m, sg)
	if got := m.ViolationCount(); got != 0 {
		t.Fatalf("after %d rounds: %d violations remain", rounds, got)
	}
}
