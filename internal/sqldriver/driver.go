// Package sqldriver exposes the sqlmini engine through the standard
// library's database/sql interface, under the driver name "cfdmem".
//
// The data source name (DSN) selects a named catalog previously registered
// with Register, so tests, tools and the detector can share in-memory
// databases:
//
//	sqldriver.Register("workload", db)          // db is a *sqlmini.DB
//	conn, _ := sql.Open("cfdmem", "workload")
//	rows, _ := conn.Query("select ... from R t, T1 tp where ...")
//
// The paper's detection technique is "SQL a DBMS can run"; routing our
// queries through database/sql keeps the reproduction honest about that
// claim — the detector uses the same API a DB2-backed implementation would.
package sqldriver

import (
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"sync"

	"repro/internal/sqlmini"
)

// DriverName is the name registered with database/sql.
const DriverName = "cfdmem"

var (
	registryMu sync.RWMutex
	registry   = make(map[string]*sqlmini.DB)
)

// Register installs a catalog under a DSN name. Re-registering a name
// replaces the previous catalog.
func Register(name string, db *sqlmini.DB) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = db
}

// Unregister removes a catalog.
func Unregister(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, name)
}

// Lookup returns the catalog registered under the DSN name.
func Lookup(name string) (*sqlmini.DB, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	db, ok := registry[name]
	return db, ok
}

// Open opens a database/sql handle for a registered catalog, creating and
// registering an empty catalog if the name is unknown.
func Open(name string) (*sql.DB, *sqlmini.DB, error) {
	registryMu.Lock()
	db, ok := registry[name]
	if !ok {
		db = sqlmini.NewDB()
		registry[name] = db
	}
	registryMu.Unlock()
	handle, err := sql.Open(DriverName, name)
	if err != nil {
		return nil, nil, err
	}
	return handle, db, nil
}

func init() {
	sql.Register(DriverName, &Driver{})
}

// Driver implements driver.Driver.
type Driver struct{}

// Open connects to the catalog named by the DSN.
func (*Driver) Open(dsn string) (driver.Conn, error) {
	db, ok := Lookup(dsn)
	if !ok {
		return nil, fmt.Errorf("sqldriver: no catalog registered under %q", dsn)
	}
	return &conn{db: db}, nil
}

type conn struct {
	db *sqlmini.DB
}

var (
	_ driver.Conn    = (*conn)(nil)
	_ driver.Queryer = (*conn)(nil)
	_ driver.Execer  = (*conn)(nil)
)

func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{c: c, query: query}, nil
}

func (c *conn) Close() error { return nil }

// Begin is required by driver.Conn; the engine has no transactions, and
// the detection workload never needs them.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("sqldriver: transactions are not supported")
}

// Query implements driver.Queryer so database/sql can skip Prepare.
func (c *conn) Query(query string, args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("sqldriver: placeholder arguments are not supported")
	}
	res, err := c.db.Query(query)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// Exec implements driver.Execer.
func (c *conn) Exec(query string, args []driver.Value) (driver.Result, error) {
	if len(args) > 0 {
		return nil, fmt.Errorf("sqldriver: placeholder arguments are not supported")
	}
	n, err := c.db.Exec(query)
	if err != nil {
		return nil, err
	}
	return result{rows: int64(n)}, nil
}

type stmt struct {
	c     *conn
	query string
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return 0 }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.c.Exec(s.query, args)
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.c.Query(s.query, args)
}

type result struct {
	rows int64
}

func (r result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("sqldriver: LastInsertId is not supported")
}

func (r result) RowsAffected() (int64, error) { return r.rows, nil }

type rows struct {
	res *sqlmini.Result
	pos int
}

func (r *rows) Columns() []string { return r.res.Cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.res.Rows) {
		return io.EOF
	}
	for i, v := range r.res.Rows[r.pos] {
		dest[i] = v
	}
	r.pos++
	return nil
}
