package sqldriver

import (
	"database/sql"
	"testing"

	"repro/internal/sqlmini"
)

func TestOpenCreatesCatalog(t *testing.T) {
	handle, db, err := Open("t_open")
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()
	defer Unregister("t_open")
	if db == nil {
		t.Fatal("Open must return the backing catalog")
	}
	if _, err := handle.Exec(`create table a (x text)`); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Table("a"); !ok {
		t.Error("table created through database/sql must be visible in the catalog")
	}
}

func TestQueryThroughDatabaseSQL(t *testing.T) {
	mini := sqlmini.NewDB()
	if _, err := mini.Exec(`create table cust (CC text, CT text)`); err != nil {
		t.Fatal(err)
	}
	if _, err := mini.Exec(`insert into cust values ('01','NYC'), ('44','EDI')`); err != nil {
		t.Fatal(err)
	}
	Register("t_query", mini)
	defer Unregister("t_query")

	handle, err := sql.Open(DriverName, "t_query")
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()

	rows, err := handle.Query(`select CT from cust t where t.CC = '44' order by CT`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		var ct string
		if err := rows.Scan(&ct); err != nil {
			t.Fatal(err)
		}
		got = append(got, ct)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "EDI" {
		t.Errorf("got %v, want [EDI]", got)
	}
}

func TestExecRowsAffected(t *testing.T) {
	handle, _, err := Open("t_exec")
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()
	defer Unregister("t_exec")
	if _, err := handle.Exec(`create table a (x text)`); err != nil {
		t.Fatal(err)
	}
	res, err := handle.Exec(`insert into a values ('1'), ('2'), ('3')`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := res.RowsAffected()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("RowsAffected = %d, want 3", n)
	}
}

func TestPreparedStatement(t *testing.T) {
	handle, _, err := Open("t_prep")
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()
	defer Unregister("t_prep")
	if _, err := handle.Exec(`create table a (x text)`); err != nil {
		t.Fatal(err)
	}
	if _, err := handle.Exec(`insert into a values ('7')`); err != nil {
		t.Fatal(err)
	}
	st, err := handle.Prepare(`select x from a`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var x string
	if err := st.QueryRow().Scan(&x); err != nil {
		t.Fatal(err)
	}
	if x != "7" {
		t.Errorf("x = %q", x)
	}
}

func TestUnknownDSN(t *testing.T) {
	handle, err := sql.Open(DriverName, "no_such_catalog")
	if err != nil {
		t.Fatal(err) // sql.Open is lazy; the error surfaces on first use
	}
	defer handle.Close()
	if err := handle.Ping(); err == nil {
		t.Error("using an unregistered DSN must fail")
	}
}

func TestTransactionsUnsupported(t *testing.T) {
	handle, _, err := Open("t_tx")
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()
	defer Unregister("t_tx")
	if _, err := handle.Begin(); err == nil {
		t.Error("Begin must be rejected")
	}
}

func TestQueryErrorsPropagate(t *testing.T) {
	handle, _, err := Open("t_err")
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Close()
	defer Unregister("t_err")
	if _, err := handle.Query(`select x from missing`); err == nil {
		t.Error("query errors must propagate through database/sql")
	}
}
