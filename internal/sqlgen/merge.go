package sqlgen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/relation"
)

// Merged is the Section 4.2 representation of a whole CFD set Σ as a single
// pair of split, union-compatible tableaux: TXΣ over the union of all LHS
// attributes and TYΣ over the union of all RHS attributes, linked by a
// pattern-tuple id. Attributes outside a pattern's own embedded FD carry
// the don't-care symbol '@'.
type Merged struct {
	// TX and TY are the split tableaux; both have "id" as their first
	// column, then XAttrs (resp. YAttrs).
	TX, TY *relation.Relation
	// XAttrs and YAttrs are the attribute unions, in first-seen order.
	XAttrs, YAttrs []string
	// Rows maps pattern-tuple id → (CFD index in Σ, tableau row index),
	// so detection output can be traced back to its originating CFD.
	Rows []MergedRow
}

// MergedRow records the provenance of one merged pattern tuple.
type MergedRow struct {
	CFD int
	Row int
}

// IDColumn is the tuple-id column linking TXΣ and TYΣ.
const IDColumn = "id"

// Merge builds the merged tableaux for Σ (Section 4.2.1). Every CFD's
// tableau is split into X- and Y-parts, extended to the attribute unions
// with '@', and stamped with a shared id.
func Merge(sigma []*core.CFD, opts Options) (*Merged, error) {
	opts = opts.withDefaults()
	if len(sigma) == 0 {
		return nil, fmt.Errorf("sqlgen: empty CFD set")
	}
	m := &Merged{}
	seenX := make(map[string]bool)
	seenY := make(map[string]bool)
	for _, c := range sigma {
		for _, a := range c.LHS {
			if err := checkIdent(a); err != nil {
				return nil, err
			}
			if !seenX[a] {
				seenX[a] = true
				m.XAttrs = append(m.XAttrs, a)
			}
		}
		for _, a := range c.RHS {
			if err := checkIdent(a); err != nil {
				return nil, err
			}
			if !seenY[a] {
				seenY[a] = true
				m.YAttrs = append(m.YAttrs, a)
			}
		}
	}
	xAttrsSchema := []relation.Attribute{relation.Attr(IDColumn)}
	for _, a := range m.XAttrs {
		xAttrsSchema = append(xAttrsSchema, relation.Attr(a))
	}
	yAttrsSchema := []relation.Attribute{relation.Attr(IDColumn)}
	for _, a := range m.YAttrs {
		yAttrsSchema = append(yAttrsSchema, relation.Attr(a))
	}
	xSchema, err := relation.NewSchema("TX", xAttrsSchema...)
	if err != nil {
		return nil, err
	}
	ySchema, err := relation.NewSchema("TY", yAttrsSchema...)
	if err != nil {
		return nil, err
	}
	m.TX = relation.New(xSchema)
	m.TY = relation.New(ySchema)

	for ci, c := range sigma {
		xPos := make(map[string]int, len(c.LHS))
		for i, a := range c.LHS {
			xPos[a] = i
		}
		yPos := make(map[string]int, len(c.RHS))
		for i, a := range c.RHS {
			yPos[a] = i
		}
		for ri, row := range c.Tableau {
			id := strconv.Itoa(len(m.Rows))
			xt := make(relation.Tuple, 0, 1+len(m.XAttrs))
			xt = append(xt, id)
			for _, a := range m.XAttrs {
				if i, ok := xPos[a]; ok {
					v, err := renderCell(row.X[i], opts)
					if err != nil {
						return nil, err
					}
					xt = append(xt, v)
				} else {
					xt = append(xt, opts.DontCare)
				}
			}
			yt := make(relation.Tuple, 0, 1+len(m.YAttrs))
			yt = append(yt, id)
			for _, a := range m.YAttrs {
				if i, ok := yPos[a]; ok {
					v, err := renderCell(row.Y[i], opts)
					if err != nil {
						return nil, err
					}
					yt = append(yt, v)
				} else {
					yt = append(yt, opts.DontCare)
				}
			}
			if err := m.TX.Insert(xt); err != nil {
				return nil, err
			}
			if err := m.TY.Insert(yt); err != nil {
				return nil, err
			}
			m.Rows = append(m.Rows, MergedRow{CFD: ci, Row: ri})
		}
	}
	return m, nil
}

// mergedXMatch renders the '@'-aware match shorthand of Section 4.2.2:
// (t.Xi = txp.Xi OR txp.Xi = '_' OR txp.Xi = '@').
func (m *Merged) mergedXMatch(xAlias string, opts Options) []string {
	var out []string
	for _, a := range m.XAttrs {
		out = append(out, fmt.Sprintf("(%s.%s = %s.%s or %s.%s = %s or %s.%s = %s)",
			opts.DataAlias, a, xAlias, a,
			xAlias, a, quote(opts.Wildcard),
			xAlias, a, quote(opts.DontCare)))
	}
	return out
}

// QC generates the merged constant-violation query QCΣ: a single query
// over R ⋈ TXΣ ⋈ TYΣ (joined on id) whose size is bounded by the embedded
// FDs of Σ, independent of the tableau contents.
func (m *Merged) QC(dataTable, txTable, tyTable string, opts Options) (string, error) {
	opts = opts.withDefaults()
	xAlias, yAlias := "txp", "typ"
	var b strings.Builder
	fmt.Fprintf(&b, "select %s.%s, %s from %s %s, %s %s, %s %s\nwhere %s.%s = %s.%s",
		xAlias, IDColumn, qcProjection(opts),
		dataTable, opts.DataAlias, txTable, xAlias, tyTable, yAlias,
		xAlias, IDColumn, yAlias, IDColumn)

	switch opts.Form {
	case CNF:
		for _, cnd := range m.mergedXMatch(xAlias, opts) {
			b.WriteString("\n  and ")
			b.WriteString(cnd)
		}
		var ys []string
		for _, a := range m.YAttrs {
			ys = append(ys, fmt.Sprintf("(%s.%s <> %s.%s and %s.%s <> %s and %s.%s <> %s)",
				opts.DataAlias, a, yAlias, a,
				yAlias, a, quote(opts.Wildcard),
				yAlias, a, quote(opts.DontCare)))
		}
		fmt.Fprintf(&b, "\n  and (%s)", strings.Join(ys, " or "))
	case DNF:
		// Each X attribute now has THREE ways to match (=, '_', '@'), so
		// the expansion is 3^|X| · |Y| — the blow-up that, as the paper
		// notes, makes DNF "not an option" for merged validation.
		disj := m.qcDisjunctsDNF(xAlias, yAlias, opts)
		fmt.Fprintf(&b, "\n  and (%s)", strings.Join(disj, "\n   or "))
	default:
		return "", fmt.Errorf("sqlgen: unknown form %d", opts.Form)
	}
	return b.String(), nil
}

func (m *Merged) xChoices3(xAlias string, opts Options) [][]string {
	out := [][]string{nil}
	for _, a := range m.XAttrs {
		choices := []string{
			fmt.Sprintf("%s.%s = %s.%s", opts.DataAlias, a, xAlias, a),
			fmt.Sprintf("%s.%s = %s", xAlias, a, quote(opts.Wildcard)),
			fmt.Sprintf("%s.%s = %s", xAlias, a, quote(opts.DontCare)),
		}
		var next [][]string
		for _, prefix := range out {
			for _, ch := range choices {
				next = append(next, append(append([]string(nil), prefix...), ch))
			}
		}
		out = next
	}
	return out
}

func (m *Merged) qcDisjunctsDNF(xAlias, yAlias string, opts Options) []string {
	var out []string
	for _, xc := range m.xChoices3(xAlias, opts) {
		for _, a := range m.YAttrs {
			parts := append(append([]string(nil), xc...),
				fmt.Sprintf("%s.%s <> %s.%s", opts.DataAlias, a, yAlias, a),
				fmt.Sprintf("%s.%s <> %s", yAlias, a, quote(opts.Wildcard)),
				fmt.Sprintf("%s.%s <> %s", yAlias, a, quote(opts.DontCare)))
			out = append(out, "("+strings.Join(parts, " and ")+")")
		}
	}
	return out
}

// maskedCol renders one CASE-masked Macro column (Section 4.2.2): the value
// is replaced by '@' exactly when the pattern cell is '@'.
func maskedCol(attr, patAlias, outName string, opts Options) string {
	return fmt.Sprintf("case when %s.%s = %s then %s else %s.%s end as %s",
		patAlias, attr, quote(opts.DontCare), quote(opts.DontCare),
		opts.DataAlias, attr, outName)
}

// QV generates the merged variable-violation query QVΣ over the Macro
// derived table with CASE masking.
//
// Deviation from the paper, documented in DESIGN.md: the GROUP BY includes
// the pattern-tuple id in addition to the masked X attributes. As written
// in the paper, pattern tuples of DIFFERENT CFDs that share the same
// X-attribute set (same '@' mask) but constrain different Y attributes
// would be grouped together and could report false violations; grouping
// per pattern tuple preserves the two-pass property and the bounded query
// size while matching the CFD semantics exactly.
func (m *Merged) QV(dataTable, txTable, tyTable string, opts Options) (string, error) {
	opts = opts.withDefaults()
	xAlias, yAlias := "txp", "typ"

	var proj []string
	proj = append(proj, fmt.Sprintf("%s.%s as pid", xAlias, IDColumn))
	var groupCols, countCols []string
	groupCols = append(groupCols, "m.pid")
	for _, a := range m.XAttrs {
		out := "MX_" + a
		proj = append(proj, maskedCol(a, xAlias, out, opts))
		groupCols = append(groupCols, "m."+out)
	}
	for _, a := range m.YAttrs {
		out := "MY_" + a
		proj = append(proj, maskedCol(a, yAlias, out, opts))
		countCols = append(countCols, "m."+out)
	}

	var where strings.Builder
	fmt.Fprintf(&where, "%s.%s = %s.%s", xAlias, IDColumn, yAlias, IDColumn)
	switch opts.Form {
	case CNF:
		for _, cnd := range m.mergedXMatch(xAlias, opts) {
			where.WriteString("\n    and ")
			where.WriteString(cnd)
		}
	case DNF:
		// With no X attributes there is nothing to match on (the id join
		// suffices), and an empty disjunct would be invalid SQL.
		if len(m.XAttrs) > 0 {
			var disj []string
			for _, xc := range m.xChoices3(xAlias, opts) {
				disj = append(disj, "("+strings.Join(xc, " and ")+")")
			}
			fmt.Fprintf(&where, "\n    and (%s)", strings.Join(disj, "\n     or "))
		}
	default:
		return "", fmt.Errorf("sqlgen: unknown form %d", opts.Form)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "select %s from (\n", strings.Join(groupCols, ", "))
	fmt.Fprintf(&b, "  select %s\n  from %s %s, %s %s, %s %s\n  where %s\n) m\n",
		strings.Join(proj, ",\n         "),
		dataTable, opts.DataAlias, txTable, xAlias, tyTable, yAlias,
		where.String())
	fmt.Fprintf(&b, "group by %s\nhaving count(distinct %s) > 1",
		strings.Join(groupCols, ", "), strings.Join(countCols, ", "))
	return b.String(), nil
}
