package sqlgen

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sqlmini"
)

func TestCustomAliases(t *testing.T) {
	opts := Default(CNF)
	opts.DataAlias = "r"
	opts.PatternAlias = "pat"
	qc, err := QC(phi3(), "cust", "T3", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qc, "cust r, T3 pat") || !strings.Contains(qc, "r.CC = pat.CC") {
		t.Errorf("aliases not applied:\n%s", qc)
	}
	if strings.Contains(qc, " t.") || strings.Contains(qc, " tp.") {
		t.Errorf("default aliases leaked:\n%s", qc)
	}
}

func TestCustomMarkersEndToEnd(t *testing.T) {
	// With custom markers, data values equal to '_' are handled correctly.
	opts := Default(CNF)
	opts.Wildcard = "\x01W"
	opts.DontCare = "\x01D"

	c := core.MustCFD([]string{"A"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.C("_")}, Y: []core.Pattern{core.C("x")}},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}},
	)
	db := sqlmini.NewDB()
	if _, err := db.Exec(`create table R (A text, B text)`); err != nil {
		t.Fatal(err)
	}
	// A literal underscore value in the data, violating B=x.
	if _, err := db.Exec(`insert into R values ('_', 'y'), ('z', 'x')`); err != nil {
		t.Fatal(err)
	}
	tab, err := TableauRelation(c, "T", opts)
	if err != nil {
		t.Fatal(err)
	}
	db.RegisterRelation("T", tab)
	qc, err := QC(c, "R", "T", opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(qc)
	if err != nil {
		t.Fatalf("%v\nSQL:\n%s", err, qc)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "0" {
		t.Errorf("QC rows = %v, want just tuple 0 (the literal '_' row)", res.Rows)
	}
}

func TestIncludeRowidOff(t *testing.T) {
	opts := Default(CNF)
	opts.IncludeRowid = false
	qc, err := QC(phi3(), "cust", "T3", opts)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(qc, "_rowid") {
		t.Errorf("rowid projected despite IncludeRowid=false:\n%s", qc)
	}
	if !strings.HasPrefix(qc, "select t.*") {
		t.Errorf("QC should project the data tuple:\n%s", qc)
	}
}

func TestFormString(t *testing.T) {
	if CNF.String() != "CNF" || DNF.String() != "DNF" {
		t.Error("Form.String misbehaves")
	}
}

func TestDefaultOptions(t *testing.T) {
	opts := Default(DNF)
	if opts.Wildcard != "_" || opts.DontCare != "@" || opts.DataAlias != "t" || opts.PatternAlias != "tp" {
		t.Errorf("defaults = %+v", opts)
	}
	if !opts.IncludeRowid || opts.Form != DNF {
		t.Errorf("defaults = %+v", opts)
	}
}

func TestMergedWithCustomMarkers(t *testing.T) {
	opts := Default(CNF)
	opts.Wildcard = "\x01W"
	opts.DontCare = "\x01D"
	m, err := Merge([]*core.CFD{phi3(), phi5()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The don't-care cells must use the custom marker.
	if m.TX.Tuples[0][3] != "\x01D" {
		t.Errorf("TX row 0 = %v", m.TX.Tuples[0])
	}
	qc, err := m.QC("cust", "TX", "TY", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qc, "'\x01D'") {
		t.Errorf("merged QC must quote the custom marker:\n%s", qc)
	}
}

func TestUnknownFormRejected(t *testing.T) {
	opts := Default(CNF)
	opts.Form = Form(99)
	if _, err := QC(phi3(), "cust", "T", opts); err == nil {
		t.Error("unknown form must be rejected by QC")
	}
	if _, err := QV(phi3(), "cust", "T", opts); err == nil {
		t.Error("unknown form must be rejected by QV")
	}
	m, err := Merge([]*core.CFD{phi3()}, Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.QC("cust", "TX", "TY", opts); err == nil {
		t.Error("unknown form must be rejected by merged QC")
	}
	if _, err := m.QV("cust", "TX", "TY", opts); err == nil {
		t.Error("unknown form must be rejected by merged QV")
	}
}

func TestMergeEmptySigma(t *testing.T) {
	if _, err := Merge(nil, Default(CNF)); err == nil {
		t.Error("empty Σ must be rejected")
	}
}

// TestMergedEmptyLHSDNF: an all-empty-LHS Σ has no X attributes; the DNF
// form must still generate valid SQL (regression for an empty-disjunct
// bug).
func TestMergedEmptyLHSDNF(t *testing.T) {
	sigma := []*core.CFD{
		core.MustCFD(nil, []string{"CC"}, core.PatternRow{Y: []core.Pattern{core.C("01")}}),
	}
	m, err := Merge(sigma, Default(DNF))
	if err != nil {
		t.Fatal(err)
	}
	db := sqlmini.NewDB()
	db.RegisterRelation("cust", custRelation())
	db.RegisterRelation("TX", m.TX)
	db.RegisterRelation("TY", m.TY)
	for _, gen := range []func(string, string, string, Options) (string, error){m.QC, m.QV} {
		sql, err := gen("cust", "TX", "TY", Default(DNF))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Query(sql); err != nil {
			t.Errorf("generated SQL does not run: %v\n%s", err, sql)
		}
	}
}
