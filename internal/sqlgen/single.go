// Package sqlgen generates the paper's violation-detection SQL (Section 4):
// the query pair (QC, QV) for a single CFD — with the WHERE clause in CNF
// as written in Figure 5, or expanded to DNF as the paper's experiments
// recommend — and the merged single-pair technique of Section 4.2 (split
// union-compatible tableaux TXΣ/TYΣ, the don't-care symbol '@', and the
// CASE-masked Macro relation).
//
// The pattern tableau is encoded as an ordinary data table (the "salient
// feature" of the paper's translation): '_' and '@' cells are stored as the
// literal marker strings of Options, so the generated query size is bounded
// by the embedded FD and independent of the tableau size.
package sqlgen

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/relation"
)

// Form selects how the WHERE clause is presented to the engine/optimizer.
type Form int

const (
	// CNF keeps the conjunctive form of Figure 5: every conjunct contains
	// OR, which defeats hash-join planning — the slow path of Figure 9(a).
	CNF Form = iota
	// DNF expands the clause into a disjunction of conjunctions (2^|X|
	// disjuncts for a single CFD), each hash-joinable — the fast path.
	DNF
)

func (f Form) String() string {
	if f == CNF {
		return "CNF"
	}
	return "DNF"
}

// Options configures generation.
type Options struct {
	// Form is the WHERE-clause presentation (default CNF, as in Figure 5).
	Form Form
	// Wildcard and DontCare are the marker strings stored in tableau
	// tables for '_' and '@' cells; data values must not collide with
	// them. Defaults: "_" and "@".
	Wildcard string
	DontCare string
	// DataAlias and PatternAlias name the relation and tableau in the
	// generated SQL. Defaults: "t" and "tp".
	DataAlias    string
	PatternAlias string
	// IncludeRowid adds t._rowid to the QC projection so violations map
	// back to tuple positions (default true).
	IncludeRowid bool
}

func (o Options) withDefaults() Options {
	if o.Wildcard == "" {
		o.Wildcard = "_"
	}
	if o.DontCare == "" {
		o.DontCare = "@"
	}
	if o.DataAlias == "" {
		o.DataAlias = "t"
	}
	if o.PatternAlias == "" {
		o.PatternAlias = "tp"
	}
	return o
}

// Default returns the default generation options with the given form and
// rowid projection enabled.
func Default(form Form) Options {
	return Options{Form: form, IncludeRowid: true}.withDefaults()
}

func quote(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

func checkIdent(name string) error {
	if name == "" {
		return fmt.Errorf("sqlgen: empty identifier")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("sqlgen: attribute %q is not a safe SQL identifier", name)
		}
	}
	return nil
}

// YColumnSuffix disambiguates a tableau column for an RHS attribute that
// also occurs on the LHS (the paper's t[AL] / t[AR] distinction).
const YColumnSuffix = "_R"

// yColumn returns the tableau column name for the i-th RHS attribute.
func yColumn(cfd *core.CFD, i int) string {
	a := cfd.RHS[i]
	for _, b := range cfd.LHS {
		if a == b {
			return a + YColumnSuffix
		}
	}
	return a
}

// renderCell encodes a pattern cell as a tableau table value.
func renderCell(p core.Pattern, opts Options) (relation.Value, error) {
	switch p.Kind {
	case core.Wildcard:
		return opts.Wildcard, nil
	case core.DontCare:
		return opts.DontCare, nil
	default:
		if p.Val == opts.Wildcard || p.Val == opts.DontCare {
			return "", fmt.Errorf("sqlgen: constant %q collides with a tableau marker; set distinct markers in Options", p.Val)
		}
		return p.Val, nil
	}
}

// TableauRelation encodes the pattern tableau of a CFD as a data table
// named name: one column per LHS attribute, one per RHS attribute (with
// YColumnSuffix when the attribute is on both sides).
func TableauRelation(cfd *core.CFD, name string, opts Options) (*relation.Relation, error) {
	opts = opts.withDefaults()
	var attrs []relation.Attribute
	for _, a := range cfd.LHS {
		if err := checkIdent(a); err != nil {
			return nil, err
		}
		attrs = append(attrs, relation.Attr(a))
	}
	for i := range cfd.RHS {
		if err := checkIdent(cfd.RHS[i]); err != nil {
			return nil, err
		}
		attrs = append(attrs, relation.Attr(yColumn(cfd, i)))
	}
	schema, err := relation.NewSchema(name, attrs...)
	if err != nil {
		return nil, err
	}
	rel := relation.New(schema)
	for _, row := range cfd.Tableau {
		t := make(relation.Tuple, 0, len(row.X)+len(row.Y))
		for _, p := range row.X {
			v, err := renderCell(p, opts)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		for _, p := range row.Y {
			v, err := renderCell(p, opts)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		if err := rel.Insert(t); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// xMatchCNF renders "t[Xi] ≍ tp[Xi]" — the shorthand of Figure 5:
// (t.Xi = tp.Xi OR tp.Xi = '_').
func xMatchCNF(cfd *core.CFD, opts Options) []string {
	var out []string
	for _, a := range cfd.LHS {
		out = append(out, fmt.Sprintf("(%s.%s = %s.%s or %s.%s = %s)",
			opts.DataAlias, a, opts.PatternAlias, a,
			opts.PatternAlias, a, quote(opts.Wildcard)))
	}
	return out
}

// yMismatch renders "t[Yj] ≭ tp[Yj]": (t.Yj <> tp.Yj AND tp.Yj <> '_').
func yMismatch(cfd *core.CFD, j int, opts Options) string {
	col := yColumn(cfd, j)
	return fmt.Sprintf("(%s.%s <> %s.%s and %s.%s <> %s)",
		opts.DataAlias, cfd.RHS[j], opts.PatternAlias, col,
		opts.PatternAlias, col, quote(opts.Wildcard))
}

// qcProjection renders the QC select list: the rowid (optionally) plus the
// whole data tuple.
func qcProjection(opts Options) string {
	if opts.IncludeRowid {
		return fmt.Sprintf("%s.%s, %s.*", opts.DataAlias, "_rowid", opts.DataAlias)
	}
	return fmt.Sprintf("%s.*", opts.DataAlias)
}

// QC generates the constant-violation query QCϕ of Figure 5 for a single
// CFD over dataTable joined with its tableau table tabTable.
func QC(cfd *core.CFD, dataTable, tabTable string, opts Options) (string, error) {
	opts = opts.withDefaults()
	if len(cfd.RHS) == 0 {
		return "", fmt.Errorf("sqlgen: CFD has no RHS")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "select %s from %s %s, %s %s\nwhere ",
		qcProjection(opts), dataTable, opts.DataAlias, tabTable, opts.PatternAlias)

	switch opts.Form {
	case CNF:
		var conj []string
		conj = append(conj, xMatchCNF(cfd, opts)...)
		var ys []string
		for j := range cfd.RHS {
			ys = append(ys, yMismatch(cfd, j, opts))
		}
		conj = append(conj, "("+strings.Join(ys, " or ")+")")
		b.WriteString(strings.Join(conj, "\n  and "))
	case DNF:
		disjuncts := qcDisjuncts(cfd, opts)
		b.WriteString(strings.Join(disjuncts, "\n   or "))
	default:
		return "", fmt.Errorf("sqlgen: unknown form %d", opts.Form)
	}
	return b.String(), nil
}

// qcDisjuncts expands QC's WHERE into DNF: for every choice of
// (equality | wildcard) per X attribute and every Y attribute, one
// hash-joinable conjunction. 2^|X| · |Y| disjuncts — the bounded blow-up
// the paper accepts because |X|, |Y| are small.
func qcDisjuncts(cfd *core.CFD, opts Options) []string {
	xChoices := xChoiceConjuncts(cfd.LHS, opts)
	var out []string
	for _, xc := range xChoices {
		for j := range cfd.RHS {
			parts := append(append([]string(nil), xc...), yMismatchAtoms(cfd, j, opts)...)
			out = append(out, "("+strings.Join(parts, " and ")+")")
		}
	}
	return out
}

// yMismatchAtoms is yMismatch split into its two atoms for DNF building.
func yMismatchAtoms(cfd *core.CFD, j int, opts Options) []string {
	col := yColumn(cfd, j)
	return []string{
		fmt.Sprintf("%s.%s <> %s.%s", opts.DataAlias, cfd.RHS[j], opts.PatternAlias, col),
		fmt.Sprintf("%s.%s <> %s", opts.PatternAlias, col, quote(opts.Wildcard)),
	}
}

// xChoiceConjuncts enumerates the 2^|X| ways to satisfy the X-match: each
// attribute either joins by equality or the pattern cell is '_'.
func xChoiceConjuncts(lhs []string, opts Options) [][]string {
	out := [][]string{nil}
	for _, a := range lhs {
		eq := fmt.Sprintf("%s.%s = %s.%s", opts.DataAlias, a, opts.PatternAlias, a)
		wc := fmt.Sprintf("%s.%s = %s", opts.PatternAlias, a, quote(opts.Wildcard))
		var next [][]string
		for _, prefix := range out {
			next = append(next, append(append([]string(nil), prefix...), eq))
			next = append(next, append(append([]string(nil), prefix...), wc))
		}
		out = next
	}
	return out
}

// QV generates the variable-violation query QVϕ of Figure 5: group the
// tuples matching tc[X] by their X values and flag groups with more than
// one distinct Y projection.
//
// When the LHS is empty the paper's "group by t.X" degenerates; we group
// by the pattern row id instead (every data tuple matches every row).
func QV(cfd *core.CFD, dataTable, tabTable string, opts Options) (string, error) {
	opts = opts.withDefaults()
	var b strings.Builder

	var groupCols []string
	for _, a := range cfd.LHS {
		groupCols = append(groupCols, fmt.Sprintf("%s.%s", opts.DataAlias, a))
	}
	if len(groupCols) == 0 {
		groupCols = []string{fmt.Sprintf("%s.%s", opts.PatternAlias, "_rowid")}
	}
	var countCols []string
	for j := range cfd.RHS {
		countCols = append(countCols, fmt.Sprintf("%s.%s", opts.DataAlias, cfd.RHS[j]))
	}

	fmt.Fprintf(&b, "select distinct %s from %s %s, %s %s\n",
		strings.Join(groupCols, ", "), dataTable, opts.DataAlias, tabTable, opts.PatternAlias)

	switch opts.Form {
	case CNF:
		if conj := xMatchCNF(cfd, opts); len(conj) > 0 {
			fmt.Fprintf(&b, "where %s\n", strings.Join(conj, "\n  and "))
		}
	case DNF:
		if len(cfd.LHS) > 0 {
			var disj []string
			for _, xc := range xChoiceConjuncts(cfd.LHS, opts) {
				disj = append(disj, "("+strings.Join(xc, " and ")+")")
			}
			fmt.Fprintf(&b, "where %s\n", strings.Join(disj, "\n   or "))
		}
	default:
		return "", fmt.Errorf("sqlgen: unknown form %d", opts.Form)
	}

	fmt.Fprintf(&b, "group by %s\nhaving count(distinct %s) > 1",
		strings.Join(groupCols, ", "), strings.Join(countCols, ", "))
	return b.String(), nil
}
