package sqlgen

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sqlmini"
)

// Fixtures: the cust instance of Figure 1 and CFDs of Figure 2 (see
// internal/core's fixtures for the ZIP note on t4).

func custRelation() *relation.Relation {
	schema := relation.MustSchema("cust",
		relation.Attr("CC"), relation.Attr("AC"), relation.Attr("PN"),
		relation.Attr("NM"), relation.Attr("STR"), relation.Attr("CT"),
		relation.Attr("ZIP"))
	rel := relation.New(schema)
	rel.MustInsert("01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974")
	rel.MustInsert("01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974")
	rel.MustInsert("01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202")
	rel.MustInsert("01", "212", "2222222", "Jim", "Elm Str.", "NYC", "02404")
	rel.MustInsert("01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394")
	rel.MustInsert("44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT")
	return rel
}

func phi2() *core.CFD {
	return core.MustCFD([]string{"CC", "AC", "PN"}, []string{"STR", "CT", "ZIP"},
		core.PatternRow{X: []core.Pattern{core.W(), core.W(), core.W()}, Y: []core.Pattern{core.W(), core.W(), core.W()}},
		core.PatternRow{X: []core.Pattern{core.C("01"), core.C("908"), core.W()}, Y: []core.Pattern{core.W(), core.C("MH"), core.W()}},
		core.PatternRow{X: []core.Pattern{core.C("01"), core.C("212"), core.W()}, Y: []core.Pattern{core.W(), core.C("NYC"), core.W()}},
	)
}

func phi3() *core.CFD {
	return core.MustCFD([]string{"CC", "AC"}, []string{"CT"},
		core.PatternRow{X: []core.Pattern{core.W(), core.W()}, Y: []core.Pattern{core.W()}},
		core.PatternRow{X: []core.Pattern{core.C("01"), core.C("215")}, Y: []core.Pattern{core.C("PHI")}},
		core.PatternRow{X: []core.Pattern{core.C("44"), core.C("141")}, Y: []core.Pattern{core.C("GLA")}},
	)
}

func phi5() *core.CFD {
	return core.MustCFD([]string{"CT"}, []string{"AC"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}},
	)
}

// loadDB builds a sqlmini catalog with cust and the tableau tables.
func loadDB(t *testing.T, cfds map[string]*core.CFD, opts Options) *sqlmini.DB {
	t.Helper()
	db := sqlmini.NewDB()
	db.RegisterRelation("cust", custRelation())
	for name, c := range cfds {
		tab, err := TableauRelation(c, name, opts)
		if err != nil {
			t.Fatal(err)
		}
		db.RegisterRelation(name, tab)
	}
	return db
}

func firstColumn(res *sqlmini.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[0]
	}
	return out
}

func TestTableauRelationEncoding(t *testing.T) {
	tab, err := TableauRelation(phi2(), "T2", Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Schema.Names(); !reflect.DeepEqual(got, []string{"CC", "AC", "PN", "STR", "CT", "ZIP"}) {
		t.Errorf("columns = %v", got)
	}
	if tab.Len() != 3 {
		t.Fatalf("rows = %d, want 3", tab.Len())
	}
	if !tab.Tuples[0].Equal(relation.Tuple{"_", "_", "_", "_", "_", "_"}) {
		t.Errorf("row 0 = %v", tab.Tuples[0])
	}
	if !tab.Tuples[1].Equal(relation.Tuple{"01", "908", "_", "_", "MH", "_"}) {
		t.Errorf("row 1 = %v", tab.Tuples[1])
	}
}

func TestTableauYColumnSuffix(t *testing.T) {
	// CT on both sides: the Y column must be renamed CT_R.
	c := core.MustCFD([]string{"CT"}, []string{"CT"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.C("NYC")}})
	tab, err := TableauRelation(c, "T", Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Schema.Names(); !reflect.DeepEqual(got, []string{"CT", "CT" + YColumnSuffix}) {
		t.Errorf("columns = %v", got)
	}
}

func TestTableauMarkerCollision(t *testing.T) {
	c := core.MustCFD([]string{"A"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.C("_")}, Y: []core.Pattern{core.W()}})
	if _, err := TableauRelation(c, "T", Default(CNF)); err == nil {
		t.Error("a constant equal to the wildcard marker must be rejected")
	}
	// But distinct markers make it fine.
	opts := Default(CNF)
	opts.Wildcard = "\x01WC"
	opts.DontCare = "\x01DC"
	if _, err := TableauRelation(c, "T", opts); err != nil {
		t.Errorf("custom markers should accept literal underscore: %v", err)
	}
}

// TestExample41QC reproduces Example 4.1: QCϕ2 returns t1 and t2.
func TestExample41QC(t *testing.T) {
	for _, form := range []Form{CNF, DNF} {
		db := loadDB(t, map[string]*core.CFD{"T2": phi2()}, Default(form))
		sql, err := QC(phi2(), "cust", "T2", Default(form))
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(sql + "\norder by _rowid")
		if err != nil {
			t.Fatalf("%s QC failed: %v\nSQL:\n%s", form, err, sql)
		}
		if got, want := firstColumn(res), []string{"0", "1"}; !reflect.DeepEqual(got, want) {
			t.Errorf("%s QC rowids = %v, want %v", form, got, want)
		}
	}
}

// TestExample41QV reproduces Example 4.1: QVϕ2 returns the X-group of t3
// and t4.
func TestExample41QV(t *testing.T) {
	for _, form := range []Form{CNF, DNF} {
		db := loadDB(t, map[string]*core.CFD{"T2": phi2()}, Default(form))
		sql, err := QV(phi2(), "cust", "T2", Default(form))
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s QV failed: %v\nSQL:\n%s", form, err, sql)
		}
		want := [][]relation.Value{{"01", "212", "2222222"}}
		got := make([][]relation.Value, len(res.Rows))
		for i, r := range res.Rows {
			got[i] = r
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s QV groups = %v, want %v", form, got, want)
		}
	}
}

// TestQCQVSatisfiedCFD: ϕ3 holds on cust, so both queries return nothing.
func TestQCQVSatisfiedCFD(t *testing.T) {
	db := loadDB(t, map[string]*core.CFD{"T3": phi3()}, Default(CNF))
	qc, err := QC(phi3(), "cust", "T3", Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	qv, err := QV(phi3(), "cust", "T3", Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := db.Query(qc); err != nil || len(res.Rows) != 0 {
		t.Errorf("QCϕ3 = %v rows (err=%v), want 0", res, err)
	}
	if res, err := db.Query(qv); err != nil || len(res.Rows) != 0 {
		t.Errorf("QVϕ3 = %v rows (err=%v), want 0", res, err)
	}
}

// TestQueriesAreTableauSizeIndependent: the generated SQL text must not
// grow with the tableau — the paper's "bounded by the embedded FD" claim.
func TestQueriesAreTableauSizeIndependent(t *testing.T) {
	small := phi3()
	big := phi3().Clone()
	for i := 0; i < 50; i++ {
		big.Tableau = append(big.Tableau, core.PatternRow{
			X: []core.Pattern{core.C("01"), core.C("999")},
			Y: []core.Pattern{core.C("XX")},
		})
	}
	for _, form := range []Form{CNF, DNF} {
		qcSmall, _ := QC(small, "cust", "T", Default(form))
		qcBig, _ := QC(big, "cust", "T", Default(form))
		if qcSmall != qcBig {
			t.Errorf("%s QC text depends on tableau contents", form)
		}
		qvSmall, _ := QV(small, "cust", "T", Default(form))
		qvBig, _ := QV(big, "cust", "T", Default(form))
		if qvSmall != qvBig {
			t.Errorf("%s QV text depends on tableau contents", form)
		}
	}
}

func TestEmptyLHSQueries(t *testing.T) {
	c := core.MustCFD(nil, []string{"CC"},
		core.PatternRow{Y: []core.Pattern{core.C("01")}})
	db := loadDB(t, map[string]*core.CFD{"T0": c}, Default(CNF))
	qc, err := QC(c, "cust", "T0", Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(qc + "\norder by _rowid")
	if err != nil {
		t.Fatalf("QC: %v\nSQL:\n%s", err, qc)
	}
	// Only t6 has CC = 44 ≠ 01.
	if got := firstColumn(res); !reflect.DeepEqual(got, []string{"5"}) {
		t.Errorf("QC rowids = %v, want [5]", got)
	}
	qv, err := QV(c, "cust", "T0", Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Query(qv)
	if err != nil {
		t.Fatalf("QV: %v\nSQL:\n%s", err, qv)
	}
	// All tuples form one group (per pattern row) with 2 distinct CCs.
	if len(res.Rows) != 1 {
		t.Errorf("QV rows = %v, want one violated group", res.Rows)
	}
}

// TestMergeFigure7 reproduces Figure 7: merging ϕ3 and ϕ5 yields TXΣ over
// (CC, AC, CT) and TYΣ over (CT, AC), with '@' in the right places.
func TestMergeFigure7(t *testing.T) {
	m, err := Merge([]*core.CFD{phi3(), phi5()}, Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.XAttrs, []string{"CC", "AC", "CT"}) {
		t.Errorf("XAttrs = %v", m.XAttrs)
	}
	if !reflect.DeepEqual(m.YAttrs, []string{"CT", "AC"}) {
		t.Errorf("YAttrs = %v", m.YAttrs)
	}
	wantTX := []relation.Tuple{
		{"0", "_", "_", "@"},
		{"1", "01", "215", "@"},
		{"2", "44", "141", "@"},
		{"3", "@", "@", "_"},
	}
	if len(m.TX.Tuples) != len(wantTX) {
		t.Fatalf("TX rows = %d, want %d", len(m.TX.Tuples), len(wantTX))
	}
	for i, w := range wantTX {
		if !m.TX.Tuples[i].Equal(w) {
			t.Errorf("TX row %d = %v, want %v", i, m.TX.Tuples[i], w)
		}
	}
	wantTY := []relation.Tuple{
		{"0", "_", "@"},
		{"1", "PHI", "@"},
		{"2", "GLA", "@"},
		{"3", "@", "_"},
	}
	for i, w := range wantTY {
		if !m.TY.Tuples[i].Equal(w) {
			t.Errorf("TY row %d = %v, want %v", i, m.TY.Tuples[i], w)
		}
	}
	// Provenance: rows 0-2 from CFD 0, row 3 from CFD 1.
	if m.Rows[0].CFD != 0 || m.Rows[3].CFD != 1 {
		t.Errorf("row provenance = %v", m.Rows)
	}
}

// TestMergedQVFindsNYC reproduces the Section 4.2.2 walk-through: over the
// merged {ϕ3, ϕ5} tableaux, QVΣ returns the NYC group violating ϕ5 (the
// NYC tuples carry area codes 908 and 212).
func TestMergedQVFindsNYC(t *testing.T) {
	m, err := Merge([]*core.CFD{phi3(), phi5()}, Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	db := sqlmini.NewDB()
	db.RegisterRelation("cust", custRelation())
	db.RegisterRelation("TX", m.TX)
	db.RegisterRelation("TY", m.TY)

	qv, err := m.QV("cust", "TX", "TY", Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(qv)
	if err != nil {
		t.Fatalf("merged QV: %v\nSQL:\n%s", err, qv)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("merged QV rows = %v, want exactly the NYC group", res.Rows)
	}
	row := res.Rows[0]
	// Columns: pid, MX_CC, MX_AC, MX_CT.
	if row[0] != "3" {
		t.Errorf("violated pattern id = %s, want 3 (ϕ5's row)", row[0])
	}
	if row[3] != "NYC" {
		t.Errorf("masked CT = %q, want NYC", row[3])
	}
	if row[1] != "@" || row[2] != "@" {
		t.Errorf("CC/AC should be masked: %v", row)
	}

	// And merged QC finds nothing (no constant violations for ϕ3/ϕ5).
	qc, err := m.QC("cust", "TX", "TY", Default(CNF))
	if err != nil {
		t.Fatal(err)
	}
	resQC, err := db.Query(qc)
	if err != nil {
		t.Fatalf("merged QC: %v\nSQL:\n%s", err, qc)
	}
	if len(resQC.Rows) != 0 {
		t.Errorf("merged QC rows = %v, want none", resQC.Rows)
	}
}

// TestMergedQCFindsConstantViolations: merge ϕ2 with ϕ3 and check that the
// constant violations of ϕ2 (t1, t2) survive merging, in both forms.
func TestMergedQCFindsConstantViolations(t *testing.T) {
	for _, form := range []Form{CNF, DNF} {
		m, err := Merge([]*core.CFD{phi2(), phi3()}, Default(form))
		if err != nil {
			t.Fatal(err)
		}
		db := sqlmini.NewDB()
		db.RegisterRelation("cust", custRelation())
		db.RegisterRelation("TX", m.TX)
		db.RegisterRelation("TY", m.TY)
		qc, err := m.QC("cust", "TX", "TY", Default(form))
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(qc + "\norder by _rowid")
		if err != nil {
			t.Fatalf("%s merged QC: %v\nSQL:\n%s", form, err, qc)
		}
		// Column 0 is the pattern id, column 1 the rowid.
		var rowids []string
		for _, r := range res.Rows {
			rowids = append(rowids, r[1])
		}
		if want := []string{"0", "1"}; !reflect.DeepEqual(rowids, want) {
			t.Errorf("%s merged QC rowids = %v, want %v", form, rowids, want)
		}
	}
}

// TestCNFandDNFAgree (property): on the cust instance, CNF and DNF
// generation of QC/QV must return identical result sets for every Figure 2
// CFD.
func TestCNFandDNFAgree(t *testing.T) {
	cfds := map[string]*core.CFD{"T2": phi2(), "T3": phi3(), "T5": phi5()}
	for name, c := range cfds {
		db := loadDB(t, map[string]*core.CFD{name: c}, Default(CNF))
		runBoth := func(gen func(*core.CFD, string, string, Options) (string, error)) ([][]relation.Value, [][]relation.Value) {
			t.Helper()
			var out [][][]relation.Value
			for _, form := range []Form{CNF, DNF} {
				sql, err := gen(c, "cust", name, Default(form))
				if err != nil {
					t.Fatal(err)
				}
				res, err := db.Query(sql)
				if err != nil {
					t.Fatalf("%s on %s: %v\nSQL:\n%s", form, name, err, sql)
				}
				rows := res.Rows
				out = append(out, rows)
			}
			return out[0], out[1]
		}
		qcCNF, qcDNF := runBoth(QC)
		if !sameRowSet(qcCNF, qcDNF) {
			t.Errorf("%s: QC CNF %v != DNF %v", name, qcCNF, qcDNF)
		}
		qvCNF, qvDNF := runBoth(QV)
		if !sameRowSet(qvCNF, qvDNF) {
			t.Errorf("%s: QV CNF %v != DNF %v", name, qvCNF, qvDNF)
		}
	}
}

func sameRowSet(a, b [][]relation.Value) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int)
	for _, r := range a {
		count[relation.EncodeKey(r)]++
	}
	for _, r := range b {
		count[relation.EncodeKey(r)]--
	}
	for _, n := range count {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestDNFDisjunctCount(t *testing.T) {
	// 2 LHS attributes, 1 RHS attribute: 2^2 · 1 = 4 QC disjuncts.
	sql, err := QC(phi3(), "cust", "T3", Default(DNF))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sql, "\n   or "); got != 3 {
		t.Errorf("QC DNF has %d or-separators, want 3 (4 disjuncts)\n%s", got, sql)
	}
	// Merged over ϕ3 ∪ ϕ5: |X| = 3 ⇒ 3^3 = 27 disjuncts in the QC DNF.
	m, err := Merge([]*core.CFD{phi3(), phi5()}, Default(DNF))
	if err != nil {
		t.Fatal(err)
	}
	mq, err := m.QC("cust", "TX", "TY", Default(DNF))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(mq, "\n   or "); got != 2*27-1 {
		t.Errorf("merged QC DNF has %d or-separators, want %d\n", got, 2*27-1)
	}
}

func TestBadIdentifierRejected(t *testing.T) {
	c := core.MustCFD([]string{"bad name"}, []string{"B"},
		core.PatternRow{X: []core.Pattern{core.W()}, Y: []core.Pattern{core.W()}})
	if _, err := TableauRelation(c, "T", Default(CNF)); err == nil {
		t.Error("unsafe identifiers must be rejected")
	}
	if _, err := Merge([]*core.CFD{c}, Default(CNF)); err == nil {
		t.Error("unsafe identifiers must be rejected by Merge")
	}
}
