package sqlmini

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/relation"
)

// project turns surviving WHERE rows into the final result: grouping and
// aggregation (GROUP BY / HAVING / COUNT), projection, DISTINCT, ORDER BY.
func (ex *selectExec) project(rows []joined) (*Result, error) {
	s := ex.stmt

	// Expand the select list: star items become explicit column refs
	// (hiding the rowid pseudo-columns).
	items, err := ex.expandItems()
	if err != nil {
		return nil, err
	}

	// Detect aggregate context.
	var aggNodes []*CountExpr
	for _, it := range items {
		aggNodes = collectAggregates(it.Expr, aggNodes)
	}
	if s.Having != nil {
		aggNodes = collectAggregates(s.Having, aggNodes)
	}
	grouped := len(s.GroupBy) > 0 || len(aggNodes) > 0
	if s.Having != nil && !grouped {
		return nil, fmt.Errorf("sqlmini: HAVING requires GROUP BY or aggregates")
	}

	var outRows [][]relation.Value
	var outCols []string

	if grouped {
		outCols, outRows, err = ex.projectGrouped(rows, items, aggNodes)
	} else {
		outCols, outRows, err = ex.projectPlain(rows, items)
	}
	if err != nil {
		return nil, err
	}

	if s.Distinct {
		seen := make(map[string]bool, len(outRows))
		kept := outRows[:0]
		for _, r := range outRows {
			k := relation.EncodeKey(r)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, r)
			}
		}
		outRows = kept
	}

	if len(s.OrderBy) > 0 {
		if err := orderRows(outCols, outRows, s.OrderBy); err != nil {
			return nil, err
		}
	}
	return &Result{Cols: outCols, Rows: outRows}, nil
}

func (ex *selectExec) expandItems() ([]SelectItem, error) {
	s := ex.stmt
	var items []SelectItem
	addStar := func(src *execSource) {
		for _, c := range src.cols {
			if c == RowidColumn {
				continue
			}
			items = append(items, SelectItem{Expr: &ColRef{Qual: src.alias, Name: c}, As: c})
		}
	}
	if s.Star {
		for _, src := range ex.sources {
			addStar(src)
		}
	}
	for _, it := range s.Items {
		if it.Qual != "" { // alias.*
			found := false
			for _, src := range ex.sources {
				if src.alias == it.Qual {
					addStar(src)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("sqlmini: unknown alias %q in %s.*", it.Qual, it.Qual)
			}
			continue
		}
		items = append(items, it)
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("sqlmini: empty select list")
	}
	return items, nil
}

func itemName(it SelectItem) string {
	if it.As != "" {
		return it.As
	}
	if ref, ok := it.Expr.(*ColRef); ok {
		return ref.Name
	}
	return exprString(it.Expr)
}

func (ex *selectExec) projectPlain(rows []joined, items []SelectItem) ([]string, [][]relation.Value, error) {
	comp := &compiler{scope: ex.scope}
	fns := make([]valFn, len(items))
	cols := make([]string, len(items))
	for i, it := range items {
		fn, err := comp.compileVal(it.Expr)
		if err != nil {
			return nil, nil, err
		}
		fns[i] = fn
		cols[i] = itemName(it)
	}
	out := make([][]relation.Value, len(rows))
	for ri, r := range rows {
		vals := make([]relation.Value, len(fns))
		for i, fn := range fns {
			vals[i] = fn(r.vals)
		}
		out[ri] = vals
	}
	return cols, out, nil
}

// aggState accumulates one aggregate within one group.
type aggState struct {
	count    int
	distinct map[string]struct{}
}

func (ex *selectExec) projectGrouped(rows []joined, items []SelectItem, aggNodes []*CountExpr) ([]string, [][]relation.Value, error) {
	s := ex.stmt
	inComp := &compiler{scope: ex.scope}

	// Compile group keys and aggregate argument extractors against the
	// input (pre-aggregation) scope.
	keyFns := make([]valFn, len(s.GroupBy))
	for i, g := range s.GroupBy {
		fn, err := inComp.compileVal(g)
		if err != nil {
			return nil, nil, err
		}
		keyFns[i] = fn
	}
	slots := make(map[*CountExpr]int, len(aggNodes))
	type aggPlan struct {
		node *CountExpr
		args []valFn
	}
	var plans []aggPlan
	for _, n := range aggNodes {
		if _, dup := slots[n]; dup {
			continue
		}
		slots[n] = len(plans)
		p := aggPlan{node: n}
		for _, a := range n.Args {
			fn, err := inComp.compileVal(a)
			if err != nil {
				return nil, nil, err
			}
			p.args = append(p.args, fn)
		}
		plans = append(plans, p)
	}

	// Group.
	type group struct {
		first []relation.Value
		aggs  []aggState
	}
	groups := make(map[string]*group)
	var order []string
	keyBuf := make([]relation.Value, len(keyFns))
	argBuf := make([]relation.Value, 8)
	for _, r := range rows {
		for i, fn := range keyFns {
			keyBuf[i] = fn(r.vals)
		}
		k := relation.EncodeKey(keyBuf)
		g, ok := groups[k]
		if !ok {
			g = &group{first: r.vals, aggs: make([]aggState, len(plans))}
			for i, p := range plans {
				if p.node.Distinct {
					g.aggs[i].distinct = make(map[string]struct{})
				}
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, p := range plans {
			switch {
			case p.node.Star, !p.node.Distinct:
				g.aggs[i].count++
			default:
				args := argBuf[:0]
				for _, fn := range p.args {
					args = append(args, fn(r.vals))
				}
				g.aggs[i].distinct[relation.EncodeKey(args)] = struct{}{}
			}
		}
	}

	// Compile HAVING and the select list in aggregate context: aggregate
	// values live in slots appended after the input row.
	aggComp := &compiler{scope: ex.scope, aggs: slots, aggBase: ex.width}
	var havingFn boolFn
	if s.Having != nil {
		fn, err := aggComp.compileBool(s.Having)
		if err != nil {
			return nil, nil, err
		}
		havingFn = fn
	}
	fns := make([]valFn, len(items))
	cols := make([]string, len(items))
	for i, it := range items {
		fn, err := aggComp.compileVal(it.Expr)
		if err != nil {
			return nil, nil, err
		}
		fns[i] = fn
		cols[i] = itemName(it)
	}

	var out [][]relation.Value
	ext := make([]relation.Value, ex.width+len(plans))
	for _, k := range order {
		g := groups[k]
		copy(ext, g.first)
		for i := range plans {
			n := g.aggs[i].count
			if g.aggs[i].distinct != nil {
				n = len(g.aggs[i].distinct)
			}
			ext[ex.width+i] = strconv.Itoa(n)
		}
		if havingFn != nil && !havingFn(ext) {
			continue
		}
		vals := make([]relation.Value, len(fns))
		for i, fn := range fns {
			vals[i] = fn(ext)
		}
		out = append(out, vals)
	}
	return cols, out, nil
}

func orderRows(cols []string, rows [][]relation.Value, by []OrderItem) error {
	type sortKey struct {
		idx  int
		desc bool
	}
	keys := make([]sortKey, len(by))
	outScope := &scope{}
	for _, c := range cols {
		outScope.cols = append(outScope.cols, column{name: c})
	}
	for i, o := range by {
		ref, ok := o.Expr.(*ColRef)
		if !ok {
			return fmt.Errorf("sqlmini: ORDER BY supports output column references only, got %s", exprString(o.Expr))
		}
		idx, err := outScope.resolve("", ref.Name)
		if err != nil {
			return err
		}
		keys[i] = sortKey{idx: idx, desc: o.Desc}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for _, k := range keys {
			c := compareValues(rows[a][k.idx], rows[b][k.idx])
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}
