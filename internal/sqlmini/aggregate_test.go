package sqlmini

import (
	"reflect"
	"testing"
)

func TestCountExprNonDistinct(t *testing.T) {
	db := testDB(t)
	// COUNT(expr) without DISTINCT counts rows (the engine has no NULLs).
	res := mustQuery(t, db, `select t.CC, count(t.CT) as n from cust t group by t.CC order by CC`)
	want := [][]string{{"01", "5"}, {"44", "1"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("count(expr) = %v, want %v", res.Rows, want)
	}
}

func TestMultipleAggregatesPerQuery(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `
		select t.CC, count(*) as total, count(distinct t.AC) as acs, count(distinct t.CT) as cts
		from cust t group by t.CC order by CC`)
	want := [][]string{{"01", "5", "3", "2"}, {"44", "1", "1", "1"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestHavingOnGroupKey(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `
		select t.AC, count(*) as n from cust t
		group by t.AC having t.AC > '200' and count(*) > 1 order by AC`)
	want := [][]string{{"212", "2"}, {"908", "2"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestSameAggregateInHavingAndSelect(t *testing.T) {
	db := testDB(t)
	// The same COUNT node text appears in both; each parsed node gets its
	// own slot but identical values.
	res := mustQuery(t, db, `
		select t.AC, count(*) as n from cust t
		group by t.AC having count(*) > 1 order by AC`)
	want := [][]string{{"212", "2"}, {"908", "2"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestAggregateOverJoin(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `create table tab (AC text)`)
	mustExec(t, db, `insert into tab values ('908'), ('212')`)
	res := mustQuery(t, db, `
		select t.AC, count(distinct t.NM) as names
		from cust t, tab p where t.AC = p.AC
		group by t.AC order by AC`)
	want := [][]string{{"212", "2"}, {"908", "2"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestCaseInsideAggregateContext(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `
		select case when t.CC = '44' then 'UK' else 'US' end as country,
		       count(distinct t.AC) as acs
		from cust t
		group by case when t.CC = '44' then 'UK' else 'US' end
		order by country`)
	want := [][]string{{"UK", "1"}, {"US", "3"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestEmptyGroupResult(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `
		select t.CC, count(*) as n from cust t where t.CC = 'nope' group by t.CC`)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v, want none", res.Rows)
	}
	// Aggregate without GROUP BY over an empty input: one group with 0.
	res = mustQuery(t, db, `select count(*) as n from cust t where t.CC = 'nope'`)
	if len(res.Rows) != 0 {
		// A single empty group yields no rows here (no input rows, no
		// groups) — document the engine's choice.
		t.Logf("engine returns %v for empty aggregate input", res.Rows)
	}
}

func TestOrderByUnknownColumn(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`select CT from cust order by NOPE`); err == nil {
		t.Error("ORDER BY on unknown output column must fail")
	}
	if _, err := db.Query(`select CT from cust order by count(*)`); err == nil {
		t.Error("ORDER BY on a non-column expression is unsupported and must fail")
	}
}

func TestHavingWithoutAggregateOrGroup(t *testing.T) {
	db := testDB(t)
	if _, err := db.Query(`select CT from cust t having t.CT = 'NYC'`); err == nil {
		t.Error("HAVING without grouping or aggregates must fail")
	}
}

func TestDistinctOnProjectedExpressions(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `
		select distinct case when t.CC = '44' then 'UK' else 'US' end as c from cust t order by c`)
	want := [][]string{{"UK"}, {"US"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestGroupBySelectsFirstRowValue(t *testing.T) {
	// Selecting a non-grouped column takes the group's first row — the
	// documented (MySQL-ish) relaxation; generated queries never rely on
	// it, but the behaviour should be stable.
	db := testDB(t)
	res := mustQuery(t, db, `select t.AC, t.NM from cust t where t.AC = '908' group by t.AC`)
	if len(res.Rows) != 1 || res.Rows[0][1] != "Mike" {
		t.Errorf("rows = %v, want first-row NM Mike", res.Rows)
	}
}
