package sqlmini

import "strings"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is "CREATE TABLE name (col [type], ...)". Column types are
// accepted and ignored: every column stores strings (see package relation).
type CreateTable struct {
	Name string
	Cols []string
}

// DropTable is "DROP TABLE name".
type DropTable struct {
	Name string
}

// Insert is "INSERT INTO name VALUES (lit, ...), (...)". Only literal rows
// are supported — the engine's loading path.
type Insert struct {
	Table string
	Rows  [][]string
}

// Select is a SELECT query.
type Select struct {
	Distinct bool
	Items    []SelectItem // empty plus Star=true means "select *"
	Star     bool
	From     []FromItem
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr // nil when absent
	OrderBy  []OrderItem
}

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}

// SelectItem is one projection: an expression with an optional output name.
// Qual is set for "alias.*" items (Expr is nil in that case).
type SelectItem struct {
	Expr Expr
	As   string
	Qual string // non-empty for "alias.*"
}

// FromItem is a base table or a parenthesized derived table, with an alias.
type FromItem struct {
	Table string  // base table name, "" for derived
	Sub   *Select // derived table, nil for base
	Alias string  // defaults to Table when absent
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a scalar or boolean expression.
type Expr interface{ expr() }

// Lit is a string or numeric literal (both carried as strings).
type Lit struct {
	Val string
}

// ColRef is a possibly-qualified column reference alias.col or col.
type ColRef struct {
	Qual string // "" when unqualified
	Name string
}

// BinOp is a binary operation: comparison (=, <>, <, <=, >, >=) or the
// connectives AND / OR.
type BinOp struct {
	Op   string
	L, R Expr
}

// NotOp is logical negation.
type NotOp struct {
	E Expr
}

// When is one CASE branch.
type When struct {
	Cond Expr
	Then Expr
}

// CaseExpr is "CASE WHEN c THEN v [WHEN ...] [ELSE v] END" (searched form).
type CaseExpr struct {
	Whens []When
	Else  Expr // nil means no ELSE (empty string result)
}

// CountExpr is COUNT(*) or COUNT([DISTINCT] e1, e2, ...).
type CountExpr struct {
	Star     bool
	Distinct bool
	Args     []Expr
}

func (*Lit) expr()       {}
func (*ColRef) expr()    {}
func (*BinOp) expr()     {}
func (*NotOp) expr()     {}
func (*CaseExpr) expr()  {}
func (*CountExpr) expr() {}

// exprString renders an expression back to SQL (used in error messages and
// for naming output columns).
func exprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr) {
	switch v := e.(type) {
	case *Lit:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(v.Val, "'", "''"))
		b.WriteByte('\'')
	case *ColRef:
		if v.Qual != "" {
			b.WriteString(v.Qual)
			b.WriteByte('.')
		}
		b.WriteString(v.Name)
	case *BinOp:
		b.WriteByte('(')
		writeExpr(b, v.L)
		b.WriteByte(' ')
		b.WriteString(v.Op)
		b.WriteByte(' ')
		writeExpr(b, v.R)
		b.WriteByte(')')
	case *NotOp:
		b.WriteString("NOT (")
		writeExpr(b, v.E)
		b.WriteByte(')')
	case *CaseExpr:
		b.WriteString("CASE")
		for _, w := range v.Whens {
			b.WriteString(" WHEN ")
			writeExpr(b, w.Cond)
			b.WriteString(" THEN ")
			writeExpr(b, w.Then)
		}
		if v.Else != nil {
			b.WriteString(" ELSE ")
			writeExpr(b, v.Else)
		}
		b.WriteString(" END")
	case *CountExpr:
		b.WriteString("COUNT(")
		if v.Star {
			b.WriteByte('*')
		} else {
			if v.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range v.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				writeExpr(b, a)
			}
		}
		b.WriteByte(')')
	}
}
