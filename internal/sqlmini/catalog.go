package sqlmini

import (
	"fmt"
	"sync"

	"repro/internal/relation"
)

// DB is an in-memory catalog of named relations plus the query engine over
// them. Relations are treated as immutable while queries run; writes
// (CREATE/INSERT/DROP) take the write lock.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*relation.Relation
}

// NewDB returns an empty catalog.
func NewDB() *DB {
	return &DB{tables: make(map[string]*relation.Relation)}
}

// RegisterRelation installs (or replaces) a relation under the given name
// without copying — the zero-cost loading path used by the detector.
func (db *DB) RegisterRelation(name string, rel *relation.Relation) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[name] = rel
}

// Table returns the named relation.
func (db *DB) Table(name string) (*relation.Relation, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, ok := db.tables[name]
	return rel, ok
}

// TableNames returns the catalog's table names (unordered).
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// Exec runs a DDL/DML statement (CREATE TABLE, DROP TABLE, INSERT) and
// returns the number of affected rows.
func (db *DB) Exec(sql string) (int, error) {
	st, err := Parse(sql)
	if err != nil {
		return 0, err
	}
	switch v := st.(type) {
	case *CreateTable:
		attrs := make([]relation.Attribute, len(v.Cols))
		for i, c := range v.Cols {
			attrs[i] = relation.Attr(c)
		}
		schema, err := relation.NewSchema(v.Name, attrs...)
		if err != nil {
			return 0, err
		}
		db.mu.Lock()
		defer db.mu.Unlock()
		if _, exists := db.tables[v.Name]; exists {
			return 0, fmt.Errorf("sqlmini: table %q already exists", v.Name)
		}
		db.tables[v.Name] = relation.New(schema)
		return 0, nil
	case *DropTable:
		db.mu.Lock()
		defer db.mu.Unlock()
		if _, exists := db.tables[v.Name]; !exists {
			return 0, fmt.Errorf("sqlmini: table %q does not exist", v.Name)
		}
		delete(db.tables, v.Name)
		return 0, nil
	case *Insert:
		db.mu.Lock()
		defer db.mu.Unlock()
		rel, exists := db.tables[v.Table]
		if !exists {
			return 0, fmt.Errorf("sqlmini: table %q does not exist", v.Table)
		}
		for _, row := range v.Rows {
			if err := rel.Insert(relation.Tuple(row)); err != nil {
				return 0, err
			}
		}
		return len(v.Rows), nil
	case *Select:
		return 0, fmt.Errorf("sqlmini: use Query for SELECT statements")
	}
	return 0, fmt.Errorf("sqlmini: unsupported statement")
}

// Query runs a SELECT and returns the materialized result.
func (db *DB) Query(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Select)
	if !ok {
		return nil, fmt.Errorf("sqlmini: Query expects a SELECT statement")
	}
	// No lock held across execution: Table() locks per lookup, and
	// relations are treated as immutable while queries run.
	return db.runSelect(sel)
}
