package sqlmini

import (
	"fmt"
	"strconv"

	"repro/internal/relation"
)

// RowidColumn is the pseudo-column every base table (and derived table)
// exposes: the 0-based position of the row in its source. The detection
// queries project it so that violations can be mapped back to tuples.
const RowidColumn = "_rowid"

// Result is a fully materialized query result.
type Result struct {
	Cols []string
	Rows [][]relation.Value
}

// execSource is one FROM item, materialized: local rows plus its segment
// placement in the full-width join row. The trailing column of every source
// is the rowid pseudo-column.
type execSource struct {
	alias  string
	cols   []string // includes trailing RowidColumn
	rows   [][]relation.Value
	rowids []relation.Value
	off    int
	width  int
}

func (s *execSource) fill(scratch []relation.Value, i int) {
	copy(scratch[s.off:], s.rows[i])
	scratch[s.off+s.width-1] = s.rowids[i]
}

// atom is one WHERE conjunct with the set of sources it references.
type atom struct {
	e    Expr
	mask uint64
	fn   boolFn
}

// equiCand is an equality conjunct between column references of two
// different sources — the only conjunct shape the planner can turn into a
// hash join (mirroring the optimizer behaviour the paper reports).
type equiCand struct {
	a          *atom
	srcL, srcR int
	absL, absR int
	consumed   bool
}

// joinStep joins one source into the accumulated row, either by hash
// lookup (probeKeys/buildKeys non-empty) or nested iteration.
type joinStep struct {
	src       int
	probeKeys []int // absolute indexes into the accumulated row
	buildKeys []int // local column indexes within the new source
	atoms     []boolFn
	hash      map[string][]int // built at execution time
}

type selectExec struct {
	db      *DB
	stmt    *Select
	sources []*execSource
	scope   *scope
	width   int
}

func (db *DB) runSelect(s *Select) (*Result, error) {
	ex := &selectExec{db: db, stmt: s}
	if err := ex.buildSources(); err != nil {
		return nil, err
	}
	rows, err := ex.runWhere()
	if err != nil {
		return nil, err
	}
	return ex.project(rows)
}

func (ex *selectExec) buildSources() error {
	if len(ex.stmt.From) == 0 {
		return fmt.Errorf("sqlmini: SELECT requires a FROM clause")
	}
	ex.scope = &scope{}
	seen := make(map[string]bool)
	for _, fi := range ex.stmt.From {
		if seen[fi.Alias] {
			return fmt.Errorf("sqlmini: duplicate FROM alias %q", fi.Alias)
		}
		seen[fi.Alias] = true
		src := &execSource{alias: fi.Alias, off: ex.width}
		if fi.Sub != nil {
			res, err := ex.db.runSelect(fi.Sub)
			if err != nil {
				return err
			}
			src.cols = append(append([]string(nil), res.Cols...), RowidColumn)
			src.rows = res.Rows
		} else {
			rel, ok := ex.db.Table(fi.Table)
			if !ok {
				return fmt.Errorf("sqlmini: unknown table %q", fi.Table)
			}
			src.cols = append(rel.Schema.Names(), RowidColumn)
			src.rows = make([][]relation.Value, len(rel.Tuples))
			for i, t := range rel.Tuples {
				src.rows[i] = t
			}
		}
		src.width = len(src.cols)
		src.rowids = make([]relation.Value, len(src.rows))
		for i := range src.rowids {
			src.rowids[i] = strconv.Itoa(i)
		}
		for _, c := range src.cols {
			ex.scope.cols = append(ex.scope.cols, column{qual: src.alias, name: c})
		}
		ex.width += src.width
		ex.sources = append(ex.sources, src)
	}
	return nil
}

// sourceOf maps an absolute column index to its source index.
func (ex *selectExec) sourceOf(abs int) int {
	for i, s := range ex.sources {
		if abs >= s.off && abs < s.off+s.width {
			return i
		}
	}
	return -1
}

// joined is one surviving WHERE row: the full-width values and, for
// cross-disjunct deduplication, the local row id of every source.
type joined struct {
	vals []relation.Value
	prov []int32
}

// runWhere evaluates the FROM/WHERE part. The WHERE clause is first split
// into top-level disjuncts; each disjunct is planned independently (its
// equality conjuncts drive hash joins), and results are unioned with
// dedup on row provenance. A single disjunct whose conjuncts contain OR —
// the CNF shape — yields no usable join keys and executes as nested loops,
// reproducing the paper's CNF-vs-DNF optimizer effect.
func (ex *selectExec) runWhere() ([]joined, error) {
	var disjuncts []Expr
	if ex.stmt.Where == nil {
		disjuncts = []Expr{nil}
	} else {
		disjuncts = splitOr(ex.stmt.Where, nil)
	}
	var out []joined
	var seen map[string]bool
	if len(disjuncts) > 1 {
		seen = make(map[string]bool)
	}
	for _, d := range disjuncts {
		rows, err := ex.runDisjunct(d)
		if err != nil {
			return nil, err
		}
		if seen == nil {
			out = rows
			continue
		}
		for _, r := range rows {
			k := provKey(r.prov)
			if !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
	}
	return out, nil
}

func provKey(prov []int32) string {
	b := make([]byte, 0, len(prov)*5)
	for _, p := range prov {
		b = strconv.AppendInt(b, int64(p), 36)
		b = append(b, ',')
	}
	return string(b)
}

// disjunctPlan is the physical plan of one disjunct: per-source
// prefilters plus an ordered list of join steps.
type disjunctPlan struct {
	prefilters [][]boolFn
	steps      []*joinStep
}

func (ex *selectExec) runDisjunct(d Expr) ([]joined, error) {
	plan, err := ex.planDisjunct(d)
	if err != nil {
		return nil, err
	}
	return ex.execDisjunct(plan)
}

// planDisjunct classifies the disjunct's conjuncts (prefilter / hash-join
// candidate / residual filter) and picks a join order, greedily
// preferring hash-joinable sources. This is where the paper's optimizer
// effect lives: a conjunct containing OR can never become a join key.
func (ex *selectExec) planDisjunct(d Expr) (*disjunctPlan, error) {
	comp := &compiler{scope: ex.scope}

	var conjuncts []Expr
	if d != nil {
		conjuncts = splitAnd(d, nil)
	}
	prefilters := make([][]boolFn, len(ex.sources))
	var atoms []*atom
	var equis []*equiCand
	for _, c := range conjuncts {
		fn, err := comp.compileBool(c)
		if err != nil {
			return nil, err
		}
		var mask uint64
		for _, ref := range colRefsOf(c, nil) {
			abs, err := ex.scope.resolve(ref.Qual, ref.Name)
			if err != nil {
				return nil, err
			}
			mask |= 1 << uint(ex.sourceOf(abs))
		}
		a := &atom{e: c, mask: mask, fn: fn}
		// Single-source (or constant) conjuncts become prefilters.
		if n, only := popcountOne(mask); n <= 1 {
			idx := only
			if n == 0 {
				idx = 0
			}
			prefilters[idx] = append(prefilters[idx], fn)
			continue
		}
		// Equality between two column references of different sources is a
		// hash-join candidate.
		if b, ok := c.(*BinOp); ok && b.Op == "=" {
			lRef, lok := b.L.(*ColRef)
			rRef, rok := b.R.(*ColRef)
			if lok && rok {
				absL, errL := ex.scope.resolve(lRef.Qual, lRef.Name)
				absR, errR := ex.scope.resolve(rRef.Qual, rRef.Name)
				if errL == nil && errR == nil {
					sL, sR := ex.sourceOf(absL), ex.sourceOf(absR)
					if sL != sR {
						equis = append(equis, &equiCand{a: a, srcL: sL, srcR: sR, absL: absL, absR: absR})
						continue
					}
				}
			}
		}
		atoms = append(atoms, a)
	}

	// Plan the join order: greedily prefer hash-joinable sources.
	steps := []*joinStep{{src: 0}}
	joinedMask := uint64(1)
	assigned := make(map[*atom]bool)
	for len(steps) < len(ex.sources) {
		next := -1
		for cand := 1; cand < len(ex.sources); cand++ {
			if joinedMask&(1<<uint(cand)) != 0 {
				continue
			}
			for _, e := range equis {
				if e.consumed {
					continue
				}
				if (e.srcL == cand && joinedMask&(1<<uint(e.srcR)) != 0) ||
					(e.srcR == cand && joinedMask&(1<<uint(e.srcL)) != 0) {
					next = cand
					break
				}
			}
			if next >= 0 {
				break
			}
		}
		step := &joinStep{}
		if next < 0 {
			// No hash-joinable source: nested-loop the next unjoined one.
			for cand := 1; cand < len(ex.sources); cand++ {
				if joinedMask&(1<<uint(cand)) == 0 {
					next = cand
					break
				}
			}
			step.src = next
		} else {
			step.src = next
			src := ex.sources[next]
			for _, e := range equis {
				if e.consumed {
					continue
				}
				switch {
				case e.srcL == next && joinedMask&(1<<uint(e.srcR)) != 0:
					step.buildKeys = append(step.buildKeys, e.absL-src.off)
					step.probeKeys = append(step.probeKeys, e.absR)
					e.consumed = true
				case e.srcR == next && joinedMask&(1<<uint(e.srcL)) != 0:
					step.buildKeys = append(step.buildKeys, e.absR-src.off)
					step.probeKeys = append(step.probeKeys, e.absL)
					e.consumed = true
				}
			}
		}
		joinedMask |= 1 << uint(step.src)
		// Attach every atom that becomes fully resolvable at this step.
		for _, a := range atoms {
			if !assigned[a] && a.mask&^joinedMask == 0 {
				assigned[a] = true
				step.atoms = append(step.atoms, a.fn)
			}
		}
		// Unconsumed equi candidates spanning the joined set degrade to
		// plain filter atoms.
		for _, e := range equis {
			if !e.consumed && !assigned[e.a] && e.a.mask&^joinedMask == 0 {
				assigned[e.a] = true
				e.consumed = true
				step.atoms = append(step.atoms, e.a.fn)
			}
		}
		steps = append(steps, step)
	}
	// Atoms referencing only source 0 ended up as prefilters; any atom not
	// yet assigned references only source 0 via mask — attach to step 0.
	for _, a := range atoms {
		if !assigned[a] {
			steps[0].atoms = append(steps[0].atoms, a.fn)
		}
	}
	return &disjunctPlan{prefilters: prefilters, steps: steps}, nil
}

// execDisjunct evaluates a planned disjunct: prefilter the sources, build
// the hash tables, then enumerate join rows depth-first.
func (ex *selectExec) execDisjunct(plan *disjunctPlan) ([]joined, error) {
	steps := plan.steps
	scratch := make([]relation.Value, ex.width)

	// Prefilter every source.
	filtered := make([][]int, len(ex.sources))
	for i, src := range ex.sources {
		if len(plan.prefilters[i]) == 0 {
			idx := make([]int, len(src.rows))
			for j := range idx {
				idx[j] = j
			}
			filtered[i] = idx
			continue
		}
		var idx []int
	rowLoop:
		for j := range src.rows {
			src.fill(scratch, j)
			for _, f := range plan.prefilters[i] {
				if !f(scratch) {
					continue rowLoop
				}
			}
			idx = append(idx, j)
		}
		filtered[i] = idx
	}

	// Build hash tables for hash steps.
	key := make([]relation.Value, 8)
	for _, st := range steps[1:] {
		st.hash = nil
		if len(st.buildKeys) == 0 {
			continue
		}
		src := ex.sources[st.src]
		st.hash = make(map[string][]int, len(filtered[st.src]))
		for _, j := range filtered[st.src] {
			row := src.rows[j]
			k := key[:0]
			for _, bk := range st.buildKeys {
				if bk == src.width-1 {
					k = append(k, src.rowids[j])
				} else {
					k = append(k, row[bk])
				}
			}
			ks := relation.EncodeKey(k)
			st.hash[ks] = append(st.hash[ks], j)
		}
	}

	// Enumerate: depth-first over the join steps, streaming into out.
	var out []joined
	prov := make([]int32, len(ex.sources))
	var rec func(depth int)
	rec = func(depth int) {
		if depth == len(steps) {
			out = append(out, joined{
				vals: append([]relation.Value(nil), scratch...),
				prov: append([]int32(nil), prov...),
			})
			return
		}
		st := steps[depth]
		src := ex.sources[st.src]
		emit := func(j int) {
			src.fill(scratch, j)
			for _, f := range st.atoms {
				if !f(scratch) {
					return
				}
			}
			prov[st.src] = int32(j)
			rec(depth + 1)
		}
		if st.hash != nil {
			k := key[:0]
			for _, pk := range st.probeKeys {
				k = append(k, scratch[pk])
			}
			for _, j := range st.hash[relation.EncodeKey(k)] {
				emit(j)
			}
			return
		}
		for _, j := range filtered[st.src] {
			emit(j)
		}
	}
	rec(0)
	return out, nil
}

func popcountOne(mask uint64) (n, only int) {
	only = -1
	for i := 0; i < 64; i++ {
		if mask&(1<<uint(i)) != 0 {
			n++
			only = i
		}
	}
	return n, only
}
