package sqlmini

import (
	"reflect"
	"sync"
	"testing"
)

// Join-planning and execution edge cases.

func TestSelfJoinWithAliases(t *testing.T) {
	db := testDB(t)
	// Pairs of distinct customers sharing a phone number.
	res := mustQuery(t, db, `
		select a.NM as n1, b.NM as n2 from cust a, cust b
		where a.PN = b.PN and a.NM < b.NM
		order by n1`)
	want := [][]string{{"Jim", "Joe"}, {"Mike", "Rick"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("self join = %v, want %v", res.Rows, want)
	}
}

func TestJoinAgainstEmptyTable(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `create table empty (AC text)`)
	res := mustQuery(t, db, `select t.NM from cust t, empty e where t.AC = e.AC`)
	if len(res.Rows) != 0 {
		t.Errorf("join with empty table = %v rows", len(res.Rows))
	}
	// Nested-loop path too (no equi key).
	res = mustQuery(t, db, `select t.NM from cust t, empty e where t.AC <> e.AC`)
	if len(res.Rows) != 0 {
		t.Errorf("nested join with empty table = %v rows", len(res.Rows))
	}
}

func TestRowidUsableAsJoinKey(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `create table ids (rid text)`)
	mustExec(t, db, `insert into ids values ('0'), ('5')`)
	res := mustQuery(t, db, `
		select t.NM from cust t, ids i where t._rowid = i.rid order by NM`)
	want := [][]string{{"Ian"}, {"Mike"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rowid join = %v, want %v", res.Rows, want)
	}
}

func TestDisjunctsWithDifferentJoinOrders(t *testing.T) {
	// One disjunct links via table b, the other via table c; both must
	// plan independently and union correctly.
	db := NewDB()
	mustExec(t, db, `create table a (x text, y text)`)
	mustExec(t, db, `create table b (x text)`)
	mustExec(t, db, `create table c (y text)`)
	mustExec(t, db, `insert into a values ('1','p'), ('2','q'), ('3','r')`)
	mustExec(t, db, `insert into b values ('1')`)
	mustExec(t, db, `insert into c values ('q')`)
	res := mustQuery(t, db, `
		select a.x from a, b, c
		where (a.x = b.x and c.y = c.y) or (a.y = c.y and b.x = b.x)
		order by x`)
	want := [][]string{{"1"}, {"2"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestTransitiveEquiChainCollapses(t *testing.T) {
	// a.x = b.x and b.x = c.x: c joins through b's key.
	db := NewDB()
	mustExec(t, db, `create table a (x text)`)
	mustExec(t, db, `create table b (x text)`)
	mustExec(t, db, `create table c (x text)`)
	mustExec(t, db, `insert into a values ('1'), ('2')`)
	mustExec(t, db, `insert into b values ('2'), ('3')`)
	mustExec(t, db, `insert into c values ('2')`)
	res := mustQuery(t, db, `select a.x from a, b, c where a.x = b.x and b.x = c.x`)
	if want := [][]string{{"2"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
	// The plan must be all hash joins.
	plan, err := db.Explain(`select a.x from a, b, c where a.x = b.x and b.x = c.x`)
	if err != nil {
		t.Fatal(err)
	}
	if n := countSubstr(plan, "hash join"); n != 2 {
		t.Errorf("want 2 hash joins, got %d:\n%s", n, plan)
	}
}

func countSubstr(s, sub string) int {
	n := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			n++
		}
	}
	return n
}

func TestSameColumnTwoEquiAtoms(t *testing.T) {
	// Two equality atoms between the same pair of tables become a
	// composite hash key.
	db := NewDB()
	mustExec(t, db, `create table a (x text, y text)`)
	mustExec(t, db, `create table b (x text, y text)`)
	mustExec(t, db, `insert into a values ('1','p'), ('1','q')`)
	mustExec(t, db, `insert into b values ('1','p')`)
	res := mustQuery(t, db, `select a.y from a, b where a.x = b.x and a.y = b.y`)
	if want := [][]string{{"p"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestReversedEquiOperands(t *testing.T) {
	// tp.X = t.X (pattern side first) must still drive the hash join.
	db := testDB(t)
	mustExec(t, db, `create table p (AC text)`)
	mustExec(t, db, `insert into p values ('908')`)
	plan, err := db.Explain(`select t.NM from cust t, p where p.AC = t.AC`)
	if err != nil {
		t.Fatal(err)
	}
	if countSubstr(plan, "hash join") != 1 {
		t.Errorf("reversed operands should hash join:\n%s", plan)
	}
	res := mustQuery(t, db, `select t.NM from cust t, p where p.AC = t.AC`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestConcurrentQueries(t *testing.T) {
	// Relations are immutable during queries; concurrent readers must not
	// race (run with -race in CI).
	db := testDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := db.Query(`select t.CC, count(*) as n from cust t group by t.CC`)
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWhereFalseConstant(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `select CT from cust t where '1' = '2'`)
	if len(res.Rows) != 0 {
		t.Errorf("constant-false predicate returned %d rows", len(res.Rows))
	}
	res = mustQuery(t, db, `select CT from cust t where '1' = '1' and t.CC = '44'`)
	if len(res.Rows) != 1 {
		t.Errorf("constant-true conjunct broke filtering: %v", res.Rows)
	}
}
