package sqlmini

import (
	"fmt"
	"strings"
)

// Explain renders the physical plan of a SELECT without executing it —
// the window into the optimizer effect the paper's Section 5 discusses:
// CNF WHERE clauses (every conjunct carrying OR) plan as nested loops,
// while DNF disjuncts plan hash joins from their equality conjuncts.
func (db *DB) Explain(sql string) (string, error) {
	st, err := Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*Select)
	if !ok {
		return "", fmt.Errorf("sqlmini: Explain expects a SELECT statement")
	}
	var b strings.Builder
	if err := db.explainSelect(sel, &b, ""); err != nil {
		return "", err
	}
	return b.String(), nil
}

func (db *DB) explainSelect(sel *Select, b *strings.Builder, indent string) error {
	ex := &selectExec{db: db, stmt: sel}
	if err := ex.buildSources(); err != nil {
		return err
	}
	for _, fi := range sel.From {
		if fi.Sub != nil {
			fmt.Fprintf(b, "%sderived table %s:\n", indent, fi.Alias)
			if err := db.explainSelect(fi.Sub, b, indent+"  "); err != nil {
				return err
			}
		}
	}

	var disjuncts []Expr
	if sel.Where == nil {
		disjuncts = []Expr{nil}
	} else {
		disjuncts = splitOr(sel.Where, nil)
	}
	form := "no predicate"
	if sel.Where != nil {
		if len(disjuncts) > 1 {
			form = fmt.Sprintf("DNF, %d disjuncts", len(disjuncts))
		} else {
			form = "single conjunction"
		}
	}
	fmt.Fprintf(b, "%sselect (%s)\n", indent, form)

	for di, d := range disjuncts {
		plan, err := ex.planDisjunct(d)
		if err != nil {
			return err
		}
		if len(disjuncts) > 1 {
			fmt.Fprintf(b, "%s  disjunct %d:\n", indent, di+1)
		}
		for si, st := range plan.steps {
			src := ex.sources[st.src]
			pre := ""
			if n := len(plan.prefilters[st.src]); n > 0 {
				pre = fmt.Sprintf(", %d prefilter(s)", n)
			}
			post := ""
			if n := len(st.atoms); n > 0 {
				post = fmt.Sprintf(", %d residual filter(s)", n)
			}
			stepIndent := indent + "  "
			if len(disjuncts) > 1 {
				stepIndent = indent + "    "
			}
			switch {
			case si == 0:
				fmt.Fprintf(b, "%sscan %s (%d rows%s%s)\n", stepIndent, src.alias, len(src.rows), pre, post)
			case len(st.buildKeys) > 0:
				keys := make([]string, len(st.buildKeys))
				for i, bk := range st.buildKeys {
					keys[i] = src.alias + "." + src.cols[bk]
				}
				fmt.Fprintf(b, "%shash join %s on (%s) (%d rows%s%s)\n",
					stepIndent, src.alias, strings.Join(keys, ", "), len(src.rows), pre, post)
			default:
				fmt.Fprintf(b, "%snested loop %s (%d rows%s%s)\n", stepIndent, src.alias, len(src.rows), pre, post)
			}
		}
	}

	items, err := ex.expandItems()
	if err != nil {
		return err
	}
	var aggs []*CountExpr
	for _, it := range items {
		aggs = collectAggregates(it.Expr, aggs)
	}
	if sel.Having != nil {
		aggs = collectAggregates(sel.Having, aggs)
	}
	if len(sel.GroupBy) > 0 || len(aggs) > 0 {
		having := ""
		if sel.Having != nil {
			having = ", having"
		}
		fmt.Fprintf(b, "%s  aggregate (%d group key(s), %d aggregate(s)%s)\n",
			indent, len(sel.GroupBy), len(aggs), having)
	}
	var post []string
	if sel.Distinct {
		post = append(post, "distinct")
	}
	if len(sel.OrderBy) > 0 {
		post = append(post, fmt.Sprintf("order by %d key(s)", len(sel.OrderBy)))
	}
	if len(post) > 0 {
		fmt.Fprintf(b, "%s  %s\n", indent, strings.Join(post, ", "))
	}
	return nil
}
