package sqlmini

import (
	"strings"
	"testing"
)

// The EXPLAIN tests turn the paper's central performance claim into a
// functional assertion: the same predicate plans nested loops in CNF and
// hash joins in DNF.

func explainDB(t *testing.T) *DB {
	t.Helper()
	db := testDB(t)
	mustExec(t, db, `create table tp (CC text, AC text, CT text)`)
	mustExec(t, db, `insert into tp values ('01','908','MH'), ('01','212','NYC')`)
	return db
}

func mustExplain(t *testing.T, db *DB, sql string) string {
	t.Helper()
	out, err := db.Explain(sql)
	if err != nil {
		t.Fatalf("Explain(%q): %v", sql, err)
	}
	return out
}

func TestExplainCNFPlansNestedLoop(t *testing.T) {
	db := explainDB(t)
	// The Figure 5 CNF shape: every conjunct contains OR.
	out := mustExplain(t, db, `
		select t._rowid from cust t, tp p
		where (t.CC = p.CC or p.CC = '_') and (t.AC = p.AC or p.AC = '_')
		  and (t.CT <> p.CT and p.CT <> '_')`)
	if !strings.Contains(out, "nested loop p") {
		t.Errorf("CNF must plan a nested loop:\n%s", out)
	}
	if strings.Contains(out, "hash join") {
		t.Errorf("CNF must not find join keys:\n%s", out)
	}
	if !strings.Contains(out, "single conjunction") {
		t.Errorf("CNF is one conjunction:\n%s", out)
	}
}

func TestExplainDNFPlansHashJoins(t *testing.T) {
	db := explainDB(t)
	// Two representative disjuncts of the DNF expansion.
	out := mustExplain(t, db, `
		select t._rowid from cust t, tp p
		where (t.CC = p.CC and t.AC = p.AC and t.CT <> p.CT and p.CT <> '_')
		   or (t.CC = p.CC and p.AC = '_' and t.CT <> p.CT and p.CT <> '_')`)
	if !strings.Contains(out, "DNF, 2 disjuncts") {
		t.Errorf("expected 2 disjuncts:\n%s", out)
	}
	// First disjunct joins on both keys, second on CC only.
	if !strings.Contains(out, "hash join p on (p.CC, p.AC)") {
		t.Errorf("disjunct 1 should hash join on CC and AC:\n%s", out)
	}
	if !strings.Contains(out, "hash join p on (p.CC)") {
		t.Errorf("disjunct 2 should hash join on CC:\n%s", out)
	}
	if strings.Contains(out, "nested loop") {
		t.Errorf("no disjunct should nested-loop:\n%s", out)
	}
}

func TestExplainPrefiltersAndResiduals(t *testing.T) {
	db := explainDB(t)
	out := mustExplain(t, db, `
		select t._rowid from cust t, tp p
		where t.CC = '01' and t.CC = p.CC and t.CT <> p.CT`)
	if !strings.Contains(out, "scan t (6 rows, 1 prefilter(s))") {
		t.Errorf("t.CC = '01' should be a prefilter on t:\n%s", out)
	}
	if !strings.Contains(out, "1 residual filter(s)") {
		t.Errorf("t.CT <> p.CT should be a residual filter:\n%s", out)
	}
}

func TestExplainAggregateAndPost(t *testing.T) {
	db := explainDB(t)
	out := mustExplain(t, db, `
		select distinct t.CC, t.AC from cust t
		group by t.CC, t.AC
		having count(distinct t.CT) > 1
		order by CC`)
	if !strings.Contains(out, "aggregate (2 group key(s), 1 aggregate(s), having)") {
		t.Errorf("aggregate line missing:\n%s", out)
	}
	if !strings.Contains(out, "distinct, order by 1 key(s)") {
		t.Errorf("post-processing line missing:\n%s", out)
	}
}

func TestExplainDerivedTable(t *testing.T) {
	db := explainDB(t)
	out := mustExplain(t, db, `
		select m.CT from (select t.CT as CT from cust t where t.CC = '01') m
		group by m.CT`)
	if !strings.Contains(out, "derived table m:") {
		t.Errorf("derived table not explained:\n%s", out)
	}
	if !strings.Contains(out, "scan t (6 rows, 1 prefilter(s))") {
		t.Errorf("inner plan not shown:\n%s", out)
	}
}

func TestExplainThreeWayJoinOrder(t *testing.T) {
	db := explainDB(t)
	mustExec(t, db, `create table ty (id text, v text)`)
	mustExec(t, db, `create table tx (id text, CC text)`)
	mustExec(t, db, `insert into tx values ('1','01')`)
	mustExec(t, db, `insert into ty values ('1','x')`)
	// R has no equi-link; tx links to R via CC, ty links to tx via id.
	out := mustExplain(t, db, `
		select t._rowid from cust t, tx, ty
		where tx.id = ty.id and t.CC = tx.CC`)
	iScan := strings.Index(out, "scan t")
	iTx := strings.Index(out, "hash join tx on (tx.CC)")
	iTy := strings.Index(out, "hash join ty on (ty.id)")
	if iScan < 0 || iTx < 0 || iTy < 0 || !(iScan < iTx && iTx < iTy) {
		t.Errorf("join order wrong:\n%s", out)
	}
}

func TestExplainErrors(t *testing.T) {
	db := explainDB(t)
	if _, err := db.Explain(`insert into tp values ('a','b','c')`); err == nil {
		t.Error("Explain must reject non-SELECT")
	}
	if _, err := db.Explain(`select * from missing`); err == nil {
		t.Error("Explain must surface planning errors")
	}
	if _, err := db.Explain(`not sql`); err == nil {
		t.Error("Explain must surface parse errors")
	}
}

// TestExplainMatchesExecution: planning inside Explain must not corrupt
// subsequent execution (plans are rebuilt per query).
func TestExplainMatchesExecution(t *testing.T) {
	db := explainDB(t)
	sql := `select t._rowid from cust t, tp p
		where t.CC = p.CC and t.AC = p.AC and t.CT <> p.CT and p.CT <> '_'
		order by _rowid`
	mustExplain(t, db, sql)
	res := mustQuery(t, db, sql)
	if len(res.Rows) != 2 {
		t.Errorf("execution after Explain returned %d rows, want 2", len(res.Rows))
	}
}
