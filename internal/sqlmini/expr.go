package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// column is one visible column during compilation: qualifier (the FROM
// alias, or "" for output columns) and name.
type column struct {
	qual string
	name string
}

// scope maps column references to absolute positions in the row layout.
type scope struct {
	cols []column
}

func (s *scope) resolve(qual, name string) (int, error) {
	if qual != "" {
		for i, c := range s.cols {
			if c.qual == qual && c.name == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("sqlmini: unknown column %s.%s", qual, name)
	}
	found := -1
	for i, c := range s.cols {
		if c.name == name {
			if found >= 0 {
				return 0, fmt.Errorf("sqlmini: ambiguous column %s", name)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("sqlmini: unknown column %s", name)
	}
	return found, nil
}

// valFn computes a scalar value from a row; boolFn a predicate.
type valFn func(row []relation.Value) relation.Value

type boolFn func(row []relation.Value) bool

// compiler turns expressions into closures over a fixed row layout. When
// aggs is non-nil, CountExpr nodes compile to reads of the aggregate slots
// appended after the base row (aggregate context: HAVING and the select
// list of a grouped query).
type compiler struct {
	scope   *scope
	aggs    map[*CountExpr]int
	aggBase int
}

func (c *compiler) compileBool(e Expr) (boolFn, error) {
	switch v := e.(type) {
	case *BinOp:
		switch v.Op {
		case "AND":
			l, err := c.compileBool(v.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compileBool(v.R)
			if err != nil {
				return nil, err
			}
			return func(row []relation.Value) bool { return l(row) && r(row) }, nil
		case "OR":
			l, err := c.compileBool(v.L)
			if err != nil {
				return nil, err
			}
			r, err := c.compileBool(v.R)
			if err != nil {
				return nil, err
			}
			return func(row []relation.Value) bool { return l(row) || r(row) }, nil
		}
		return c.compileCmp(v)
	case *NotOp:
		inner, err := c.compileBool(v.E)
		if err != nil {
			return nil, err
		}
		return func(row []relation.Value) bool { return !inner(row) }, nil
	}
	return nil, fmt.Errorf("sqlmini: expected a boolean expression, got %s", exprString(e))
}

func (c *compiler) compileCmp(v *BinOp) (boolFn, error) {
	l, err := c.compileVal(v.L)
	if err != nil {
		return nil, err
	}
	r, err := c.compileVal(v.R)
	if err != nil {
		return nil, err
	}
	switch v.Op {
	case "=":
		return func(row []relation.Value) bool { return l(row) == r(row) }, nil
	case "<>":
		return func(row []relation.Value) bool { return l(row) != r(row) }, nil
	case "<":
		return func(row []relation.Value) bool { return compareValues(l(row), r(row)) < 0 }, nil
	case "<=":
		return func(row []relation.Value) bool { return compareValues(l(row), r(row)) <= 0 }, nil
	case ">":
		return func(row []relation.Value) bool { return compareValues(l(row), r(row)) > 0 }, nil
	case ">=":
		return func(row []relation.Value) bool { return compareValues(l(row), r(row)) >= 0 }, nil
	}
	return nil, fmt.Errorf("sqlmini: unsupported operator %q", v.Op)
}

func (c *compiler) compileVal(e Expr) (valFn, error) {
	switch v := e.(type) {
	case *Lit:
		val := v.Val
		return func([]relation.Value) relation.Value { return val }, nil
	case *ColRef:
		idx, err := c.scope.resolve(v.Qual, v.Name)
		if err != nil {
			return nil, err
		}
		return func(row []relation.Value) relation.Value { return row[idx] }, nil
	case *CaseExpr:
		type branch struct {
			cond boolFn
			then valFn
		}
		branches := make([]branch, len(v.Whens))
		for i, w := range v.Whens {
			cond, err := c.compileBool(w.Cond)
			if err != nil {
				return nil, err
			}
			then, err := c.compileVal(w.Then)
			if err != nil {
				return nil, err
			}
			branches[i] = branch{cond, then}
		}
		var elseFn valFn
		if v.Else != nil {
			fn, err := c.compileVal(v.Else)
			if err != nil {
				return nil, err
			}
			elseFn = fn
		}
		return func(row []relation.Value) relation.Value {
			for _, b := range branches {
				if b.cond(row) {
					return b.then(row)
				}
			}
			if elseFn != nil {
				return elseFn(row)
			}
			return ""
		}, nil
	case *CountExpr:
		if c.aggs == nil {
			return nil, fmt.Errorf("sqlmini: aggregate %s not allowed here", exprString(v))
		}
		slot, ok := c.aggs[v]
		if !ok {
			return nil, fmt.Errorf("sqlmini: internal: unregistered aggregate %s", exprString(v))
		}
		idx := c.aggBase + slot
		return func(row []relation.Value) relation.Value { return row[idx] }, nil
	}
	return nil, fmt.Errorf("sqlmini: expected a scalar expression, got %s", exprString(e))
}

// compareValues orders numerically when both values parse as numbers, and
// lexicographically otherwise (the engine stores everything as strings).
func compareValues(a, b relation.Value) int {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// collectAggregates walks an expression and appends every CountExpr node.
func collectAggregates(e Expr, out []*CountExpr) []*CountExpr {
	switch v := e.(type) {
	case *CountExpr:
		return append(out, v)
	case *BinOp:
		out = collectAggregates(v.L, out)
		return collectAggregates(v.R, out)
	case *NotOp:
		return collectAggregates(v.E, out)
	case *CaseExpr:
		for _, w := range v.Whens {
			out = collectAggregates(w.Cond, out)
			out = collectAggregates(w.Then, out)
		}
		if v.Else != nil {
			out = collectAggregates(v.Else, out)
		}
	}
	return out
}

// colRefsOf appends every column reference in the expression.
func colRefsOf(e Expr, out []*ColRef) []*ColRef {
	switch v := e.(type) {
	case *ColRef:
		return append(out, v)
	case *BinOp:
		out = colRefsOf(v.L, out)
		return colRefsOf(v.R, out)
	case *NotOp:
		return colRefsOf(v.E, out)
	case *CaseExpr:
		for _, w := range v.Whens {
			out = colRefsOf(w.Cond, out)
			out = colRefsOf(w.Then, out)
		}
		if v.Else != nil {
			out = colRefsOf(v.Else, out)
		}
	case *CountExpr:
		for _, a := range v.Args {
			out = colRefsOf(a, out)
		}
	}
	return out
}

// splitOr flattens top-level OR into disjuncts (no distribution).
func splitOr(e Expr, out []Expr) []Expr {
	if b, ok := e.(*BinOp); ok && b.Op == "OR" {
		out = splitOr(b.L, out)
		return splitOr(b.R, out)
	}
	return append(out, e)
}

// splitAnd flattens top-level AND into conjuncts.
func splitAnd(e Expr, out []Expr) []Expr {
	if b, ok := e.(*BinOp); ok && b.Op == "AND" {
		out = splitAnd(b.L, out)
		return splitAnd(b.R, out)
	}
	return append(out, e)
}
