package sqlmini

import (
	"fmt"
	"strings"
)

type lexer struct {
	in   string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; SQL statements here are short.
func lex(in string) ([]token, error) {
	l := &lexer{in: in}
	for {
		l.skipSpace()
		if l.pos >= len(l.in) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.in[l.pos]
		switch {
		case isIdentStart(c):
			l.ident()
		case c >= '0' && c <= '9':
			l.number()
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		default:
			if err := l.symbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.in) {
		switch l.in[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		case '-':
			// "--" line comment
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '-' {
				for l.pos < len(l.in) && l.in[l.pos] != '\n' {
					l.pos++
				}
				continue
			}
			return
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
		l.pos++
	}
	word := l.in[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		l.emit(token{kind: tokKeyword, text: upper, pos: start})
		return
	}
	l.emit(token{kind: tokIdent, text: word, pos: start})
}

func (l *lexer) number() {
	start := l.pos
	for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9' || l.in[l.pos] == '.') {
		l.pos++
	}
	l.emit(token{kind: tokNumber, text: l.in[start:l.pos], pos: start})
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlmini: unterminated string literal at offset %d", start)
}

func (l *lexer) symbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.in) {
		two = l.in[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "!=", "<=", ">=":
		l.pos += 2
		text := two
		if text == "!=" {
			text = "<>"
		}
		l.emit(token{kind: tokSymbol, text: text, pos: start})
		return nil
	}
	c := l.in[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '.', '*':
		l.pos++
		l.emit(token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	}
	return fmt.Errorf("sqlmini: unexpected character %q at offset %d", c, start)
}
