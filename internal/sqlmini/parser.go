package sqlmini

import (
	"fmt"
)

// Parse parses a single SQL statement.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlmini: trailing input after statement: %s", p.peek())
	}
	return st, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) keyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sqlmini: expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) symbol(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.symbol(s) {
		return fmt.Errorf("sqlmini: expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.peek().kind == tokIdent {
		return p.next().text, nil
	}
	return "", fmt.Errorf("sqlmini: expected identifier, got %s", p.peek())
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.keyword("SELECT"):
		p.pos--
		return p.selectStmt()
	case p.keyword("CREATE"):
		return p.createTable()
	case p.keyword("DROP"):
		return p.dropTable()
	case p.keyword("INSERT"):
		return p.insert()
	}
	return nil, fmt.Errorf("sqlmini: expected SELECT, CREATE, DROP or INSERT, got %s", p.peek())
}

func (p *parser) createTable() (Statement, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		// Optional type name: swallow a single identifier (TEXT, VARCHAR…).
		if p.peek().kind == tokIdent {
			p.pos++
			// And an optional length like VARCHAR(32).
			if p.symbol("(") {
				if p.peek().kind != tokNumber {
					return nil, fmt.Errorf("sqlmini: expected length, got %s", p.peek())
				}
				p.pos++
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
		}
		if p.symbol(",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateTable{Name: name, Cols: cols}, nil
	}
}

func (p *parser) dropTable() (Statement, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *parser) insert() (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []string
		for {
			t := p.peek()
			switch t.kind {
			case tokString, tokNumber:
				row = append(row, t.text)
				p.pos++
			default:
				return nil, fmt.Errorf("sqlmini: expected literal, got %s", t)
			}
			if p.symbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.symbol(",") {
			continue
		}
		return ins, nil
	}
}

func (p *parser) selectStmt() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &Select{}
	s.Distinct = p.keyword("DISTINCT")

	// Select list.
	for {
		if p.symbol("*") {
			s.Star = true
		} else {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, item)
		}
		if p.symbol(",") {
			continue
		}
		break
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.fromItem()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, fi)
		if p.symbol(",") {
			continue
		}
		break
	}

	if p.keyword("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.symbol(",") {
				continue
			}
			break
		}
	}
	if p.keyword("HAVING") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.keyword("DESC") {
				item.Desc = true
			} else {
				p.keyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if p.symbol(",") {
				continue
			}
			break
		}
	}
	return s, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	// "alias.*" star projection.
	if p.peek().kind == tokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
		qual := p.next().text
		p.pos += 2
		return SelectItem{Qual: qual}, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.keyword("AS") {
		name, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.As = name
	} else if p.peek().kind == tokIdent {
		// Bare alias: "expr name".
		item.As = p.next().text
	}
	return item, nil
}

func (p *parser) fromItem() (FromItem, error) {
	if p.symbol("(") {
		sub, err := p.selectStmt()
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return FromItem{}, err
		}
		p.keyword("AS")
		alias, err := p.ident()
		if err != nil {
			return FromItem{}, fmt.Errorf("sqlmini: derived table needs an alias: %w", err)
		}
		return FromItem{Sub: sub, Alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Table: name, Alias: name}
	if p.keyword("AS") {
		alias, err := p.ident()
		if err != nil {
			return FromItem{}, err
		}
		fi.Alias = alias
	} else if p.peek().kind == tokIdent {
		fi.Alias = p.next().text
	}
	return fi, nil
}

// Expression grammar: OR > AND > NOT > comparison > primary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.keyword("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotOp{E: e}, nil
	}
	return p.comparison()
}

func (p *parser) comparison() (Expr, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol {
		switch p.peek().text {
		case "=", "<>", "<", "<=", ">", ">=":
			op := p.next().text
			right, err := p.primary()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokString, t.kind == tokNumber:
		p.pos++
		return &Lit{Val: t.text}, nil
	case t.kind == tokKeyword && t.text == "CASE":
		return p.caseExpr()
	case t.kind == tokKeyword && t.text == "COUNT":
		return p.countExpr()
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.pos++
		if p.symbol(".") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Qual: t.text, Name: name}, nil
		}
		return &ColRef{Name: t.text}, nil
	}
	return nil, fmt.Errorf("sqlmini: expected expression, got %s", t)
}

func (p *parser) caseExpr() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.keyword("WHEN") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sqlmini: CASE needs at least one WHEN (only the searched form is supported)")
	}
	if p.keyword("ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) countExpr() (Expr, error) {
	if err := p.expectKeyword("COUNT"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	c := &CountExpr{}
	if p.symbol("*") {
		c.Star = true
	} else {
		c.Distinct = p.keyword("DISTINCT")
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, e)
			if p.symbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return c, nil
}
