package sqlmini

import (
	"reflect"
	"strings"
	"testing"
)

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`SELECT t.a, 'it''s' FROM r WHERE x <> 10 -- trailing comment`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	wantTexts := []string{"SELECT", "t", ".", "a", ",", "it's", "FROM", "r", "WHERE", "x", "<>", "10", ""}
	if !reflect.DeepEqual(texts, wantTexts) {
		t.Errorf("texts = %q, want %q", texts, wantTexts)
	}
	if kinds[0] != tokKeyword || kinds[1] != tokIdent || kinds[5] != tokString || kinds[11] != tokNumber || kinds[12] != tokEOF {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestLexerCaseInsensitiveKeywords(t *testing.T) {
	toks, err := lex(`select DiStInCt frOM`)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"SELECT", "DISTINCT", "FROM"} {
		if toks[i].kind != tokKeyword || toks[i].text != want {
			t.Errorf("token %d = %v, want keyword %s", i, toks[i], want)
		}
	}
}

func TestLexerBangEquals(t *testing.T) {
	toks, err := lex(`a != b`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].text != "<>" {
		t.Errorf("!= should normalize to <>, got %q", toks[1].text)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex(`'unterminated`); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := lex(`a ; b`); err == nil {
		t.Error("unknown symbol must fail")
	}
	if _, err := lex("a # b"); err == nil {
		t.Error("hash is not a token")
	}
}

func TestParseSelectShape(t *testing.T) {
	st, err := Parse(`
		select distinct t.a as x, count(distinct t.b, t.c) n
		from r t, (select a from s) sub
		where t.a = sub.a or not (t.a <> '1')
		group by t.a
		having count(*) > 1
		order by x desc, n`)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := st.(*Select)
	if !ok {
		t.Fatalf("not a select: %T", st)
	}
	if !sel.Distinct {
		t.Error("distinct lost")
	}
	if len(sel.Items) != 2 || sel.Items[0].As != "x" || sel.Items[1].As != "n" {
		t.Errorf("items = %+v", sel.Items)
	}
	if _, isCount := sel.Items[1].Expr.(*CountExpr); !isCount {
		t.Errorf("item 1 should be a COUNT, got %T", sel.Items[1].Expr)
	}
	if len(sel.From) != 2 || sel.From[0].Alias != "t" || sel.From[1].Sub == nil || sel.From[1].Alias != "sub" {
		t.Errorf("from = %+v", sel.From)
	}
	or, ok := sel.Where.(*BinOp)
	if !ok || or.Op != "OR" {
		t.Errorf("where = %s", exprString(sel.Where))
	}
	if _, isNot := or.R.(*NotOp); !isNot {
		t.Errorf("right disjunct should be NOT, got %T", or.R)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group by / having lost")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
}

func TestParsePrecedence(t *testing.T) {
	st, err := Parse(`select a from r where a = '1' and b = '2' or c = '3'`)
	if err != nil {
		t.Fatal(err)
	}
	where := st.(*Select).Where
	// AND binds tighter: (a AND b) OR c.
	or, ok := where.(*BinOp)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %s", exprString(where))
	}
	if l, ok := or.L.(*BinOp); !ok || l.Op != "AND" {
		t.Errorf("left = %s", exprString(or.L))
	}
	// Parentheses override.
	st2, err := Parse(`select a from r where a = '1' and (b = '2' or c = '3')`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := st2.(*Select).Where.(*BinOp)
	if !ok || and.Op != "AND" {
		t.Errorf("top = %s", exprString(st2.(*Select).Where))
	}
}

func TestParseCreateTableTypes(t *testing.T) {
	st, err := Parse(`create table r (a text, b varchar(32), c)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if !reflect.DeepEqual(ct.Cols, []string{"a", "b", "c"}) {
		t.Errorf("cols = %v", ct.Cols)
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	st, err := Parse(`insert into r values ('a', 1), ('b', 2)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if len(ins.Rows) != 2 || ins.Rows[0][1] != "1" || ins.Rows[1][0] != "b" {
		t.Errorf("rows = %v", ins.Rows)
	}
}

func TestParseCaseForms(t *testing.T) {
	st, err := Parse(`select case when a = '1' then 'x' when a = '2' then 'y' else 'z' end from r`)
	if err != nil {
		t.Fatal(err)
	}
	c := st.(*Select).Items[0].Expr.(*CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case = %+v", c)
	}
	// No ELSE.
	st2, err := Parse(`select case when a = '1' then 'x' end from r`)
	if err != nil {
		t.Fatal(err)
	}
	if st2.(*Select).Items[0].Expr.(*CaseExpr).Else != nil {
		t.Error("ELSE should be nil")
	}
}

func TestExprString(t *testing.T) {
	st, err := Parse(`select case when t.a = 'x''y' then '1' else '0' end as c, count(distinct t.b) from r t where not (t.a <> '2')`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*Select)
	if got := exprString(sel.Items[0].Expr); !strings.Contains(got, "'x''y'") {
		t.Errorf("quote escaping lost: %s", got)
	}
	if got := exprString(sel.Items[1].Expr); got != "COUNT(DISTINCT t.b)" {
		t.Errorf("count rendering = %s", got)
	}
	if got := exprString(sel.Where); got != "NOT ((t.a <> '2'))" {
		t.Errorf("not rendering = %s", got)
	}
	// Star counts.
	st2, _ := Parse(`select count(*) from r`)
	if got := exprString(st2.(*Select).Items[0].Expr); got != "COUNT(*)" {
		t.Errorf("count star = %s", got)
	}
}

// TestParsedSQLRoundTripsThroughEngine: the SQL fragments the generator
// emits all parse into shapes the executor supports.
func TestParsedSQLRoundTripsThroughEngine(t *testing.T) {
	db := testDB(t)
	queries := []string{
		`select t.CC from cust t where (t.CC = '01' or t.CC = '_') and (t.CT <> 'MH' and t.CT <> '_')`,
		`select distinct t.CC, t.AC from cust t group by t.CC, t.AC having count(distinct t.CT, t.ZIP) > 1`,
		`select m.a from (select t.CC as a from cust t) m group by m.a having count(*) >= 1`,
	}
	for _, q := range queries {
		if _, err := db.Query(q); err != nil {
			t.Errorf("Query(%q): %v", q, err)
		}
	}
}

func TestSplitOrAnd(t *testing.T) {
	st, err := Parse(`select a from r where (a = '1' or b = '2') and c = '3' or d = '4'`)
	if err != nil {
		t.Fatal(err)
	}
	where := st.(*Select).Where
	disj := splitOr(where, nil)
	if len(disj) != 2 {
		t.Fatalf("top-level disjuncts = %d, want 2", len(disj))
	}
	conj := splitAnd(disj[0], nil)
	if len(conj) != 2 {
		t.Errorf("conjuncts of first disjunct = %d, want 2", len(conj))
	}
	// The nested OR inside the first conjunct must NOT be split.
	if inner, ok := conj[0].(*BinOp); !ok || inner.Op != "OR" {
		t.Errorf("nested OR was destroyed: %s", exprString(conj[0]))
	}
}
