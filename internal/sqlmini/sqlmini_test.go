package sqlmini

import (
	"reflect"
	"testing"

	"repro/internal/relation"
)

// testDB builds a small catalog mirroring the paper's cust example.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `create table cust (CC text, AC text, PN text, NM text, STR text, CT text, ZIP text)`)
	mustExec(t, db, `insert into cust values
		('01','908','1111111','Mike','Tree Ave.','NYC','07974'),
		('01','908','1111111','Rick','Tree Ave.','NYC','07974'),
		('01','212','2222222','Joe','Elm Str.','NYC','01202'),
		('01','212','2222222','Jim','Elm Str.','NYC','02404'),
		('01','215','3333333','Ben','Oak Ave.','PHI','02394'),
		('44','131','4444444','Ian','High St.','EDI','EH4 1DT')`)
	return db
}

func mustExec(t *testing.T, db *DB, sql string) int {
	t.Helper()
	n, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

func rowsAsStrings(res *Result) [][]string {
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r
	}
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `select CT from cust t where t.CC = '44'`)
	if want := [][]string{{"EDI"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
	if !reflect.DeepEqual(res.Cols, []string{"CT"}) {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `select * from cust`)
	if len(res.Cols) != 7 || len(res.Rows) != 6 {
		t.Errorf("star select: %d cols, %d rows", len(res.Cols), len(res.Rows))
	}
	res = mustQuery(t, db, `select t.* from cust t where t.AC = '908'`)
	if len(res.Rows) != 2 {
		t.Errorf("alias star: %d rows, want 2", len(res.Rows))
	}
}

func TestRowidPseudoColumn(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `select t._rowid from cust t where t.NM = 'Ben'`)
	if want := [][]string{{"4"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rowid = %v, want %v", res.Rows, want)
	}
}

func TestWhereAndOrNot(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db,
		`select NM from cust t where (t.AC = '908' or t.AC = '215') and not (t.NM = 'Rick')`)
	if want := [][]string{{"Mike"}, {"Ben"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("rows = %v, want %v", res.Rows, want)
	}
}

func TestComparisonOperators(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `create table n (v text)`)
	mustExec(t, db, `insert into n values ('2'), ('10'), ('abc')`)
	// Numeric comparison when both sides are numbers: 2 < 10.
	res := mustQuery(t, db, `select v from n t where t.v < 10`)
	if want := [][]string{{"2"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("numeric <: %v, want %v", res.Rows, want)
	}
	// String comparison when either side is non-numeric.
	res = mustQuery(t, db, `select v from n t where t.v >= 'abc'`)
	if want := [][]string{{"abc"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("string >=: %v, want %v", res.Rows, want)
	}
	res = mustQuery(t, db, `select v from n t where t.v <> '10'`)
	if len(res.Rows) != 2 {
		t.Errorf("<>: %d rows, want 2", len(res.Rows))
	}
}

func TestJoinTwoTables(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `create table codes (AC text, CITY text)`)
	mustExec(t, db, `insert into codes values ('908','MH'), ('212','NYC'), ('215','PHI')`)
	res := mustQuery(t, db, `
		select distinct t.NM, c.CITY from cust t, codes c
		where t.AC = c.AC and t.CC = '01'
		order by NM`)
	want := [][]string{{"Ben", "PHI"}, {"Jim", "NYC"}, {"Joe", "NYC"}, {"Mike", "MH"}, {"Rick", "MH"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("join rows = %v, want %v", res.Rows, want)
	}
}

func TestCrossJoinNoPredicate(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `create table a (x text)`)
	mustExec(t, db, `create table b (y text)`)
	mustExec(t, db, `insert into a values ('1'), ('2')`)
	mustExec(t, db, `insert into b values ('u'), ('v'), ('w')`)
	res := mustQuery(t, db, `select x, y from a, b`)
	if len(res.Rows) != 6 {
		t.Errorf("cross join: %d rows, want 6", len(res.Rows))
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `create table a (id text, v text)`)
	mustExec(t, db, `create table b (id text, w text)`)
	mustExec(t, db, `create table c (id text, u text)`)
	mustExec(t, db, `insert into a values ('1','a1'), ('2','a2')`)
	mustExec(t, db, `insert into b values ('1','b1'), ('2','b2')`)
	mustExec(t, db, `insert into c values ('2','c2')`)
	res := mustQuery(t, db, `
		select a.v, b.w, c.u from a, b, c
		where a.id = b.id and b.id = c.id`)
	if want := [][]string{{"a2", "b2", "c2"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("3-way join = %v, want %v", res.Rows, want)
	}
}

func TestGroupByHavingCountDistinct(t *testing.T) {
	db := testDB(t)
	// The QV shape of the paper: groups with more than one distinct Y.
	res := mustQuery(t, db, `
		select distinct t.CC, t.AC, t.PN from cust t
		group by t.CC, t.AC, t.PN
		having count(distinct t.STR, t.CT, t.ZIP) > 1`)
	// Only (01,212,2222222): t3 and t4 differ on ZIP.
	want := [][]string{{"01", "212", "2222222"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("QV groups = %v, want %v", res.Rows, want)
	}
}

func TestCountStar(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `select t.CC, count(*) as n from cust t group by t.CC order by CC`)
	want := [][]string{{"01", "5"}, {"44", "1"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("count(*) = %v, want %v", res.Rows, want)
	}
}

func TestAggregateWithoutGroupBy(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `select count(*) as n from cust t`)
	if want := [][]string{{"6"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("count = %v, want %v", res.Rows, want)
	}
	res = mustQuery(t, db, `select count(distinct t.CC) as n from cust t`)
	if want := [][]string{{"2"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("count distinct = %v, want %v", res.Rows, want)
	}
}

func TestCaseExpression(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `
		select case when t.CC = '44' then 'UK' else 'US' end as country
		from cust t order by country`)
	if len(res.Rows) != 6 || res.Rows[0][0] != "UK" || res.Rows[5][0] != "US" {
		t.Errorf("case rows = %v", res.Rows)
	}
	if res.Cols[0] != "country" {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestCaseMaskingLikeMacro(t *testing.T) {
	// The Section 4.2 masking shape: replace a value by '@' when the
	// pattern cell is '@'.
	db := NewDB()
	mustExec(t, db, `create table r (A text, B text)`)
	mustExec(t, db, `create table p (A text, B text)`)
	mustExec(t, db, `insert into r values ('1','x'), ('2','y')`)
	mustExec(t, db, `insert into p values ('@','_')`)
	res := mustQuery(t, db, `
		select case when p.A = '@' then '@' else r.A end as MA,
		       case when p.B = '@' then '@' else r.B end as MB
		from r, p`)
	want := [][]string{{"@", "x"}, {"@", "y"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("masking = %v, want %v", res.Rows, want)
	}
}

func TestDerivedTable(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `
		select m.CT, count(*) as n
		from (select t.CT as CT from cust t where t.CC = '01') m
		group by m.CT
		order by CT`)
	want := [][]string{{"NYC", "4"}, {"PHI", "1"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("derived = %v, want %v", res.Rows, want)
	}
}

func TestGroupByExpression(t *testing.T) {
	db := testDB(t)
	// Group directly by a CASE expression (what the merged QV relies on).
	res := mustQuery(t, db, `
		select case when t.CC = '44' then 'UK' else 'US' end as country, count(*) as n
		from cust t
		group by case when t.CC = '44' then 'UK' else 'US' end
		order by country`)
	want := [][]string{{"UK", "1"}, {"US", "5"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("group-by-expr = %v, want %v", res.Rows, want)
	}
}

func TestOrderByDesc(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `select distinct t.AC from cust t order by AC desc`)
	want := [][]string{{"908"}, {"215"}, {"212"}, {"131"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("order desc = %v, want %v", res.Rows, want)
	}
}

func TestNumericOrderBy(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `create table n (v text)`)
	mustExec(t, db, `insert into n values ('10'), ('2'), ('1')`)
	res := mustQuery(t, db, `select v from n order by v`)
	want := [][]string{{"1"}, {"2"}, {"10"}}
	if !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("numeric order = %v, want %v", res.Rows, want)
	}
}

func TestCNFAndDNFSameResult(t *testing.T) {
	// The CNF and DNF forms of the same predicate must agree — the paper's
	// rewriting only changes the plan, never the answer.
	db := testDB(t)
	mustExec(t, db, `create table tp (CC text, AC text, CT text)`)
	mustExec(t, db, `insert into tp values ('01','908','MH'), ('01','212','NYC'), ('_','_','_')`)
	cnf := `
		select t._rowid from cust t, tp p
		where (t.CC = p.CC or p.CC = '_') and (t.AC = p.AC or p.AC = '_')
		  and (t.CT <> p.CT and p.CT <> '_')
		order by _rowid`
	dnf := `
		select t._rowid from cust t, tp p
		where (t.CC = p.CC and t.AC = p.AC and t.CT <> p.CT and p.CT <> '_')
		   or (t.CC = p.CC and p.AC = '_' and t.CT <> p.CT and p.CT <> '_')
		   or (p.CC = '_' and t.AC = p.AC and t.CT <> p.CT and p.CT <> '_')
		   or (p.CC = '_' and p.AC = '_' and t.CT <> p.CT and p.CT <> '_')
		order by _rowid`
	r1 := mustQuery(t, db, cnf)
	r2 := mustQuery(t, db, dnf)
	if !reflect.DeepEqual(r1.Rows, r2.Rows) {
		t.Errorf("CNF %v != DNF %v", r1.Rows, r2.Rows)
	}
	// t1, t2 have CT=NYC but pattern (01,908) demands MH.
	if want := [][]string{{"0"}, {"1"}}; !reflect.DeepEqual(rowsAsStrings(r1), want) {
		t.Errorf("violations = %v, want %v", r1.Rows, want)
	}
}

func TestDNFDeduplicatesAcrossDisjuncts(t *testing.T) {
	// A row matching several disjuncts must appear once.
	db := NewDB()
	mustExec(t, db, `create table a (x text)`)
	mustExec(t, db, `insert into a values ('1')`)
	res := mustQuery(t, db, `select x from a t where t.x = '1' or t.x <> '2'`)
	if len(res.Rows) != 1 {
		t.Errorf("dedup: %d rows, want 1", len(res.Rows))
	}
}

func TestInsertArityMismatch(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `create table a (x text, y text)`)
	if _, err := db.Exec(`insert into a values ('1')`); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestDDLErrors(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `create table a (x text)`)
	if _, err := db.Exec(`create table a (x text)`); err == nil {
		t.Error("duplicate create must fail")
	}
	if _, err := db.Exec(`drop table b`); err == nil {
		t.Error("dropping a missing table must fail")
	}
	mustExec(t, db, `drop table a`)
	if _, err := db.Query(`select x from a`); err == nil {
		t.Error("query on dropped table must fail")
	}
}

func TestQueryErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		`select NOPE from cust`,
		`select t.CC from cust t, cust t`,          // duplicate alias
		`select CC from cust t where count(*) > 1`, // aggregate in WHERE
		`select z.CC from cust t`,
		`select CC from missing`,
		`select CC from cust t having count(*) > 0`, // HAVING without grouping is fine? no: grouped because aggregate present
	}
	for _, sql := range bad[:5] {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("Query(%q) should fail", sql)
		}
	}
	// The last one IS legal (aggregate context from HAVING): single group.
	res := mustQuery(t, db, bad[5])
	if len(res.Rows) != 1 {
		t.Errorf("having-only aggregate: %d rows", len(res.Rows))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`select`,
		`select from cust`,
		`select * cust`,
		`select * from (select * from cust)`, // derived table needs alias
		`select * from cust where`,
		`select * from cust where CC = `,
		`update cust set CC = '1'`,
		`select case end from cust`,
		`select 'unterminated from cust`,
		`insert into cust values ('a'`,
		`select * from cust; select * from cust`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestRegisterRelation(t *testing.T) {
	db := NewDB()
	rel := relation.New(relation.MustSchema("ext", relation.Attr("K")))
	rel.MustInsert("v")
	db.RegisterRelation("ext", rel)
	res := mustQuery(t, db, `select K from ext`)
	if want := [][]string{{"v"}}; !reflect.DeepEqual(rowsAsStrings(res), want) {
		t.Errorf("registered relation rows = %v", res.Rows)
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "ext" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestStringLiteralEscapes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `create table s (v text)`)
	mustExec(t, db, `insert into s values ('O''Hare')`)
	res := mustQuery(t, db, `select v from s t where t.v = 'O''Hare'`)
	if len(res.Rows) != 1 {
		t.Errorf("quote escape: %d rows, want 1", len(res.Rows))
	}
}

func TestLineComments(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, `select CT -- the city
		from cust t where t.CC = '44'`)
	if len(res.Rows) != 1 {
		t.Errorf("comment handling: %d rows", len(res.Rows))
	}
}

func TestUnambiguousUnqualifiedColumns(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, `create table z (ZIP text, OTHER text)`)
	mustExec(t, db, `insert into z values ('07974','x')`)
	// ZIP is ambiguous across cust and z.
	if _, err := db.Query(`select ZIP from cust t, z`); err == nil {
		t.Error("ambiguous column must be rejected")
	}
	// OTHER is unique.
	res := mustQuery(t, db, `select OTHER from cust t, z where t.ZIP = z.ZIP`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}
