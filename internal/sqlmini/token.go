// Package sqlmini is a small in-memory SQL engine: lexer, parser, planner
// and executor for the SQL subset the paper's detection queries need —
// multi-table SELECT with WHERE in CNF or DNF, GROUP BY / HAVING with
// COUNT(DISTINCT …), CASE expressions, derived tables, DISTINCT and ORDER
// BY, plus CREATE TABLE / INSERT / DROP TABLE for loading.
//
// It stands in for the commercial DBMS (DB2) of the paper's experiments.
// The planner deliberately reproduces the optimizer behaviour the paper
// reports: equality conjuncts become hash joins, but conjuncts containing
// OR cannot drive a join and force nested loops — so presenting a WHERE
// clause in DNF (one hash-joinable conjunction per disjunct) beats the
// same clause in CNF, exactly as in Section 5 "CNF vs. DNF".
package sqlmini

import "fmt"

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString // single-quoted string literal
	tokNumber
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; strings unquoted
	pos  int    // byte offset in the input, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords recognized by the lexer (case-insensitive in the input).
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"AND": true, "OR": true, "NOT": true, "AS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"COUNT": true, "ASC": true, "DESC": true,
	"CREATE": true, "TABLE": true, "DROP": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UNION": true, "ALL": true,
}
