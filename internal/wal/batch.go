package wal

import (
	"encoding/binary"
	"fmt"
)

// Batch records: one framed record carrying an ordered vector of opaque
// sub-payloads. A ChangeSet journals as a single batch record, so the
// whole vector shares one length prefix, one CRC and — with fsync
// enabled — one disk sync, and a crash mid-write tears the record as a
// unit: Replay drops it entirely, never a suffix of its sub-payloads.
// That is what makes a journaled batch all-or-nothing under crash.
//
// The framing is uvarint count followed by uvarint-length-prefixed
// entries. Like single records, the payloads are opaque: the caller
// (internal/incremental) brings its own op codec and is responsible for
// distinguishing batch records from legacy single-op records — replay
// of logs that predate batches keeps working because the record layer
// is unchanged.

// EncodeBatch appends the batch framing of subs to dst and returns the
// extended slice. dst typically starts with the caller's record-type
// marker so the result is directly appendable to a Log.
func EncodeBatch(dst []byte, subs [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(subs)))
	for _, sub := range subs {
		dst = binary.AppendUvarint(dst, uint64(len(sub)))
		dst = append(dst, sub...)
	}
	return dst
}

// DecodeBatch parses a batch body produced by EncodeBatch (after the
// caller has consumed its own marker) and calls fn for each sub-payload
// in order. The slices passed to fn alias p. An error from fn aborts
// the decode; framing damage is reported as an error — inside a
// CRC-verified record it means a codec bug, not a torn write.
func DecodeBatch(p []byte, fn func(sub []byte) error) error {
	n, w := binary.Uvarint(p)
	if w <= 0 {
		return fmt.Errorf("wal: batch count malformed")
	}
	p = p[w:]
	for i := uint64(0); i < n; i++ {
		ln, w := binary.Uvarint(p)
		if w <= 0 || uint64(len(p)-w) < ln {
			return fmt.Errorf("wal: batch entry %d overruns record", i)
		}
		if err := fn(p[w : w+int(ln)]); err != nil {
			return err
		}
		p = p[w+int(ln):]
	}
	if len(p) != 0 {
		return fmt.Errorf("wal: %d trailing bytes after batch", len(p))
	}
	return nil
}
