package wal

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("one")},
		{[]byte("a"), nil, []byte(""), []byte("bcd")},
	}
	for _, subs := range cases {
		enc := EncodeBatch([]byte{0xFF}, subs) // caller marker survives up front
		if enc[0] != 0xFF {
			t.Fatal("marker clobbered")
		}
		var got [][]byte
		if err := DecodeBatch(enc[1:], func(sub []byte) error {
			got = append(got, append([]byte(nil), sub...))
			return nil
		}); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(subs) {
			t.Fatalf("decoded %d entries, want %d", len(got), len(subs))
		}
		for i := range subs {
			if !bytes.Equal(got[i], subs[i]) {
				t.Fatalf("entry %d = %q, want %q", i, got[i], subs[i])
			}
		}
	}
}

func TestBatchDecodeErrors(t *testing.T) {
	good := EncodeBatch(nil, [][]byte{[]byte("abc"), []byte("d")})
	nop := func([]byte) error { return nil }
	if err := DecodeBatch(nil, nop); err == nil {
		t.Error("empty body must error (no count)")
	}
	// Entry overrunning the record.
	if err := DecodeBatch(good[:len(good)-1], nop); err == nil {
		t.Error("truncated entry must error")
	}
	// Trailing garbage after the declared entries.
	if err := DecodeBatch(append(append([]byte(nil), good...), 0x01), nop); err == nil {
		t.Error("trailing bytes must error")
	}
	// fn errors abort the decode.
	boom := errors.New("boom")
	if err := DecodeBatch(good, func([]byte) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("fn error not propagated: %v", err)
	}
}

// TestBatchRecordTornTail: a batch record torn mid-write must vanish as a
// unit on replay — the record framing (length + CRC) covers the whole
// vector, so no sub-payload of the torn batch is ever delivered.
func TestBatchRecordTornTail(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/wal-test"
	log, err := Create(path, false)
	if err != nil {
		t.Fatal(err)
	}
	whole := EncodeBatch([]byte{7}, [][]byte{[]byte("aaaa"), []byte("bbbb")})
	torn := EncodeBatch([]byte{7}, [][]byte{[]byte("cccc"), []byte("dddd")})
	if err := log.Append(whole); err != nil {
		t.Fatal(err)
	}
	if err := log.Append(torn); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the second record: cut into the middle of its payload.
	cut := int64(headerSize + len(whole) + headerSize + len(torn)/2)
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}
	var seen [][]byte
	records, validLen, tornTail, err := Replay(path, func(p []byte) error {
		seen = append(seen, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tornTail || records != 1 || validLen != int64(headerSize+len(whole)) {
		t.Fatalf("records=%d validLen=%d torn=%v", records, validLen, tornTail)
	}
	if len(seen) != 1 || !bytes.Equal(seen[0], whole) {
		t.Fatalf("replay delivered %d records; a torn batch must be dropped whole", len(seen))
	}
	// The surviving record still decodes to its two sub-payloads.
	var subs int
	if err := DecodeBatch(seen[0][1:], func([]byte) error { subs++; return nil }); err != nil || subs != 2 {
		t.Fatalf("surviving batch decode: subs=%d err=%v", subs, err)
	}
}
