package wal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SnapshotPath returns the snapshot file of a generation.
func SnapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d", seq))
}

// LogPath returns the log segment of a generation.
func LogPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d", seq))
}

// Generations scans dir and returns the generation numbers that have a
// snapshot file and those that have a log segment, each in ascending
// order. Temp files and foreign names are ignored.
func Generations(dir string) (snaps, logs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseGen(name, "snap-"); ok {
			snaps = append(snaps, seq)
		} else if seq, ok := parseGen(name, "wal-"); ok {
			logs = append(logs, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	return snaps, logs, nil
}

func parseGen(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// WriteSnapshot durably writes the snapshot of a generation: the content
// goes to a temp file which is fsynced and renamed into place, then the
// directory itself is fsynced, so a crash at any point leaves either no
// snap-seq file or a complete one.
func WriteSnapshot(dir string, seq uint64, write func(w io.Writer) error) (err error) {
	final := SnapshotPath(dir, seq)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// RemoveBelow garbage-collects every snapshot older than keepSnap and
// every log segment older than keepLog. The two thresholds differ on a
// shipping primary: recovery only ever reads the newest snapshot, so
// older ones go at every roll, but closed segments are retained for a few
// generations (Options.RetainSegments in internal/incremental) so a
// briefly-disconnected follower can resume its cursor instead of paying a
// full snapshot resync. Removal failures are reported but the scan
// continues: a leftover old generation is harmless, a missing new one is
// not.
func RemoveBelow(dir string, keepSnap, keepLog uint64) error {
	snaps, logs, err := Generations(dir)
	if err != nil {
		return err
	}
	var firstErr error
	rm := func(path string) {
		if err := os.Remove(path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, s := range snaps {
		if s < keepSnap {
			rm(SnapshotPath(dir, s))
		}
	}
	for _, l := range logs {
		if l < keepLog {
			rm(LogPath(dir, l))
		}
	}
	return firstErr
}

// syncDir fsyncs a directory so a just-renamed file is durable on crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
