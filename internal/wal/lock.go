package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// DirLock is an exclusive advisory lock on a WAL directory, preventing
// two processes (or two monitors in one process) from appending to the
// same generation and interleaving frames mid-record. The lock is tied
// to the open file description, so it vanishes with the process — a
// crash never leaves a stale lock behind.
type DirLock struct {
	f *os.File
}

// LockDir takes the directory's exclusive lock without blocking; a held
// lock is an immediate error naming the directory.
func LockDir(dir string) (*DirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: directory %s is in use by another monitor: %w", dir, err)
	}
	return &DirLock{f: f}, nil
}

// Unlock releases the lock. The lock file itself is left in place: it
// carries no state and removing it would race a concurrent LockDir.
func (l *DirLock) Unlock() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := funlock(l.f)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
