//go:build !unix

package wal

import "os"

// Non-unix builds run without an advisory directory lock: single-process
// use is still safe (the journal mutex serializes appends), concurrent
// processes on one WAL directory are the operator's responsibility.
func flockExclusive(*os.File) error { return nil }

func funlock(*os.File) error { return nil }
