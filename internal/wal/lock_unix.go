//go:build unix

package wal

import (
	"os"
	"syscall"
)

func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

func funlock(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
