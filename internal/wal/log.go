// Package wal holds the on-disk machinery behind the durable serving
// path: a length-prefixed, CRC-checked append-only change log plus
// atomically-written snapshot files, organized in generations.
//
// A generation pairs one snapshot with one log segment: snap-N is a full
// state image, wal-N is the changes applied since it was taken. Rolling
// to generation N+1 writes snap-(N+1) (temp file, fsync, rename, directory
// fsync), starts an empty wal-(N+1), and only then garbage-collects
// generation N — so at every instant the directory contains at least one
// complete recovery path. Recovery picks the newest snapshot and replays
// its log segment; a torn tail (partial record, CRC mismatch) marks the
// crash point and everything before it is kept. A corrupt snapshot fails
// the boot loudly — there is no silent fallback to an older generation,
// which normal rotation garbage-collects anyway.
//
// The package is deliberately ignorant of what the records mean: payloads
// are opaque byte slices. internal/incremental supplies the operation
// codec and the snapshot serialization.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/obs"
)

// headerSize is the per-record framing: uint32 payload length followed by
// uint32 CRC-32 (IEEE) of the payload, both little-endian.
const headerSize = 8

// maxRecord bounds a single record; a larger length in a header is treated
// as corruption rather than an allocation request.
const maxRecord = 64 << 20

// Log is an append-only record log. Appends are buffered; with fsync
// enabled every Append flushes and syncs before returning, otherwise
// records reach the OS on Sync/Close or when the buffer fills.
//
// A Log is not safe for concurrent use; callers serialize appends (the
// Monitor's journal lock does this).
type Log struct {
	f     *os.File
	w     *bufio.Writer
	fsync bool
	hdr   [headerSize]byte

	// stats are the optional metric hooks (obs handles are nil-safe);
	// timed caches whether any timer is armed, so an uninstrumented log
	// never reads the clock.
	stats LogStats
	timed bool
}

// LogStats are optional observability hooks a Log reports through: the
// owner (the Monitor's journal) registers the series and hands the
// handles down, keeping this package free of metric names. Any field
// may be nil.
type LogStats struct {
	// AppendSeconds times framing + buffering one record, fsync excluded.
	AppendSeconds *obs.Histogram
	// SyncSeconds times Sync: buffer flush + file fsync.
	SyncSeconds *obs.Histogram
	// Records counts appended records, Bytes the appended bytes
	// including framing.
	Records *obs.Counter
	Bytes   *obs.Counter
}

// SetStats arms the metric hooks. Not safe to call concurrently with
// Append/Sync; callers set stats right after Create/OpenAppend.
func (l *Log) SetStats(s LogStats) {
	l.stats = s
	l.timed = s.AppendSeconds != nil || s.SyncSeconds != nil
}

// Create starts a new, empty log segment at path.
func Create(path string, fsync bool) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, w: bufio.NewWriter(f), fsync: fsync}, nil
}

// OpenAppend opens an existing segment for appending (after recovery has
// replayed and, if necessary, truncated it).
func OpenAppend(path string, fsync bool) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f, w: bufio.NewWriter(f), fsync: fsync}, nil
}

// Append writes one framed record. With fsync enabled the record is
// durable when Append returns.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	var start time.Time
	if l.timed {
		start = time.Now()
	}
	binary.LittleEndian.PutUint32(l.hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(l.hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	l.stats.Records.Inc()
	l.stats.Bytes.Add(uint64(headerSize + len(payload)))
	if l.timed {
		l.stats.AppendSeconds.ObserveSince(start)
	}
	if l.fsync {
		return l.Sync()
	}
	return nil
}

// FlushedSize flushes buffered records to the OS and reports the
// segment's current byte length — the upper bound a shipping cursor may
// read to. Everything below it is whole framed records.
func (l *Log) FlushedSize() (int64, error) {
	if err := l.w.Flush(); err != nil {
		return 0, err
	}
	fi, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Sync flushes buffered records and fsyncs the file.
func (l *Log) Sync() error {
	var start time.Time
	if l.timed {
		start = time.Now()
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if l.timed {
		l.stats.SyncSeconds.ObserveSince(start)
	}
	return nil
}

// Close flushes, syncs and closes the segment.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Replay reads the segment at path, calling fn for each intact record in
// order. It returns the number of records delivered, the byte offset of
// the first damaged or incomplete record (== file size when the log is
// clean), and whether the tail was torn. The payload passed to fn is only
// valid during the call.
//
// A torn tail — truncated header, truncated payload, or CRC mismatch — is
// the signature of a crash mid-append; everything before it is trusted,
// everything from it on is garbage a caller should truncate away before
// appending again. An error from fn aborts the replay.
func Replay(path string, fn func(payload []byte) error) (records int, validLen int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, 0, false, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, false, err
	}
	r := bufio.NewReader(f)
	var (
		off int64
		hdr [headerSize]byte
		buf []byte
	)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return records, off, false, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				return records, off, true, nil // torn header
			}
			return records, off, false, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecord || off+headerSize+int64(n) > size {
			return records, off, true, nil // absurd length or runs past EOF
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return records, off, true, nil // torn payload
			}
			return records, off, false, err
		}
		if crc32.ChecksumIEEE(buf) != want {
			return records, off, true, nil // corrupt payload
		}
		if err := fn(buf); err != nil {
			return records, off, false, err
		}
		records++
		off += headerSize + int64(n)
	}
}
