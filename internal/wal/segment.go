package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Segment shipping: the chunk codec behind WAL replication. A primary
// serves record-aligned byte ranges of its segments (closed ones and the
// flushed prefix of the live tail) and a follower appends them to its own
// copy of the same segment, so the shipped stream IS the framing of
// log.go — no second wire format, and a follower's directory recovers
// with the exact machinery a primary's does.
//
// Both ends cut at record boundaries: ReadChunk never returns a partial
// record, and ScanRecords on the receiving side stops at the last intact
// boundary, so a connection torn mid-record leaves the cursor exactly
// where a crashed append would — the next request resumes from the
// boundary, and nothing is applied twice or by halves.

// frameStatus classifies the end of a frame scan.
type frameStatus int

const (
	// frameClean: the scan consumed the input exactly.
	frameClean frameStatus = iota
	// frameTorn: the input ends inside a record (truncated header or
	// payload) — normal at a chunk cap or a cut connection.
	frameTorn
	// frameCorrupt: a complete record failed its CRC, or a header claims
	// an absurd length — real damage, not a short read.
	frameCorrupt
)

// scanFrames walks the framed records in p, calling fn (when non-nil) for
// each intact payload in order. It returns the byte length of the whole-
// record prefix, the record count, and how the scan ended. An error from
// fn aborts the scan.
func scanFrames(p []byte, fn func(payload []byte) error) (consumed int64, records int, st frameStatus, err error) {
	off := 0
	for {
		if len(p)-off < headerSize {
			if len(p)-off == 0 {
				return int64(off), records, frameClean, nil
			}
			return int64(off), records, frameTorn, nil
		}
		n := binary.LittleEndian.Uint32(p[off : off+4])
		want := binary.LittleEndian.Uint32(p[off+4 : off+8])
		if n > maxRecord {
			return int64(off), records, frameCorrupt, nil
		}
		if len(p)-off-headerSize < int(n) {
			return int64(off), records, frameTorn, nil
		}
		payload := p[off+headerSize : off+headerSize+int(n)]
		if crc32.ChecksumIEEE(payload) != want {
			return int64(off), records, frameCorrupt, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return int64(off), records, frameClean, err
			}
		}
		records++
		off += headerSize + int(n)
	}
}

// ScanRecords parses the framed records of a shipped chunk, calling fn
// for each payload in order. It returns the byte length of the applied
// whole-record prefix (the cursor advance) and the record count. A chunk
// that ends mid-record is not an error — the consumed prefix is applied
// and the torn tail re-ships on the next request — but a CRC mismatch or
// absurd length inside the chunk is: the stream can no longer be
// trusted. The payload passed to fn is only valid during the call.
func ScanRecords(chunk []byte, fn func(payload []byte) error) (consumed int64, records int, err error) {
	consumed, records, st, err := scanFrames(chunk, fn)
	if err != nil {
		return consumed, records, err
	}
	if st == frameCorrupt {
		return consumed, records, fmt.Errorf("wal: corrupt record at chunk offset %d", consumed)
	}
	return consumed, records, nil
}

// ReadChunk reads whole framed records from the segment at path, starting
// at byte offset and bounded by maxBytes of framed data and limit (the
// flushed segment length — bytes past it may still be in a writer's
// buffer and are not served). A record larger than maxBytes is returned
// alone, so a cursor can never wedge against the cap. The returned next
// offset is offset + len(data).
//
// The valid prefix of a segment contains only whole records (recovery
// truncates torn tails before a segment is ever served), so damage inside
// the window is reported as an error, not silently skipped — a primary
// must fail the request rather than stall its followers at the same
// cursor forever.
func ReadChunk(path string, offset int64, maxBytes int, limit int64) (data []byte, records int, err error) {
	if offset > limit {
		return nil, 0, fmt.Errorf("wal: chunk offset %d past segment end %d", offset, limit)
	}
	if maxBytes < headerSize {
		// Below one frame header nothing can ever ship — and the
		// grow-to-one-record path reads the header from the first buffer.
		maxBytes = headerSize
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	want := limit - offset
	if want > int64(maxBytes) {
		want = int64(maxBytes)
	}
	buf := make([]byte, want)
	n, err := io.ReadFull(io.NewSectionReader(f, offset, want), buf)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, 0, err
	}
	buf = buf[:n]
	consumed, records, st, _ := scanFrames(buf, nil)
	if st == frameCorrupt {
		return nil, 0, fmt.Errorf("wal: corrupt record in %s at offset %d", path, offset+consumed)
	}
	if consumed == 0 && st == frameTorn && offset+int64(len(buf)) < limit {
		// First record outgrows the cap: read exactly that one record.
		need := int64(headerSize) + int64(binary.LittleEndian.Uint32(buf[0:4]))
		if offset+need > limit {
			return nil, 0, nil // record not fully flushed yet
		}
		one := make([]byte, need)
		if _, err := io.ReadFull(io.NewSectionReader(f, offset, need), one); err != nil {
			return nil, 0, err
		}
		consumed, records, st, _ = scanFrames(one, nil)
		if st == frameCorrupt || consumed != need {
			return nil, 0, fmt.Errorf("wal: corrupt record in %s at offset %d", path, offset)
		}
		return one, records, nil
	}
	return buf[:consumed], records, nil
}
