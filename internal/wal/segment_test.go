package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeSegment appends the payloads to a fresh segment and returns its
// path and the per-record frame boundaries (cumulative byte offsets).
func writeSegment(t *testing.T, payloads [][]byte) (path string, bounds []int64) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "wal-00000001")
	l, err := Create(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var off int64
	bounds = []int64{0}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		off += headerSize + int64(len(p))
		bounds = append(bounds, off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path, bounds
}

func segPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte('a' + i%26)}, i%40)))
	}
	return out
}

// TestChunkRoundTrip ships a segment in small chunks and checks the
// reassembled payload sequence is exact — every chunk cut lands on a
// record boundary and the cursor resumes precisely where the last chunk
// ended.
func TestChunkRoundTrip(t *testing.T) {
	payloads := segPayloads(50)
	path, bounds := writeSegment(t, payloads)
	size := bounds[len(bounds)-1]

	for _, maxBytes := range []int{16, 64, 1 << 20} {
		var got [][]byte
		var off int64
		for off < size {
			data, records, err := ReadChunk(path, off, maxBytes, size)
			if err != nil {
				t.Fatalf("max=%d off=%d: %v", maxBytes, off, err)
			}
			if len(data) == 0 {
				t.Fatalf("max=%d off=%d: empty chunk below segment end %d", maxBytes, off, size)
			}
			consumed, n, err := ScanRecords(data, func(p []byte) error {
				got = append(got, append([]byte(nil), p...))
				return nil
			})
			if err != nil {
				t.Fatalf("max=%d off=%d: scan: %v", maxBytes, off, err)
			}
			if consumed != int64(len(data)) || n != records {
				t.Fatalf("max=%d off=%d: scan consumed %d/%d records %d/%d", maxBytes, off, consumed, len(data), n, records)
			}
			off += consumed
		}
		if len(got) != len(payloads) {
			t.Fatalf("max=%d: shipped %d records, want %d", maxBytes, len(got), len(payloads))
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("max=%d: record %d = %q, want %q", maxBytes, i, got[i], payloads[i])
			}
		}
	}
}

// TestChunkTinyMaxBytes: a cap below one frame header must not panic or
// wedge — the cap is raised to the minimum that can make progress, and
// the whole segment still ships one record at a time.
func TestChunkTinyMaxBytes(t *testing.T) {
	payloads := segPayloads(5)
	path, bounds := writeSegment(t, payloads)
	size := bounds[len(bounds)-1]
	for _, maxBytes := range []int{-3, 0, 1, 7} {
		var off int64
		n := 0
		for off < size {
			data, records, err := ReadChunk(path, off, maxBytes, size)
			if err != nil {
				t.Fatalf("max=%d off=%d: %v", maxBytes, off, err)
			}
			if len(data) == 0 {
				t.Fatalf("max=%d off=%d: cursor wedged", maxBytes, off)
			}
			n += records
			off += int64(len(data))
		}
		if n != len(payloads) {
			t.Fatalf("max=%d: shipped %d records, want %d", maxBytes, n, len(payloads))
		}
	}
}

// TestChunkOversizedRecord: a record larger than the chunk cap ships
// alone instead of wedging the cursor.
func TestChunkOversizedRecord(t *testing.T) {
	big := bytes.Repeat([]byte("x"), 4096)
	payloads := [][]byte{[]byte("small"), big, []byte("after")}
	path, bounds := writeSegment(t, payloads)
	size := bounds[len(bounds)-1]

	var got [][]byte
	var off int64
	for off < size {
		data, _, err := ReadChunk(path, off, 64, size)
		if err != nil {
			t.Fatalf("off=%d: %v", off, err)
		}
		if len(data) == 0 {
			t.Fatalf("off=%d: cursor wedged on oversized record", off)
		}
		consumed, _, err := ScanRecords(data, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		off += consumed
	}
	if len(got) != 3 || !bytes.Equal(got[1], big) {
		t.Fatalf("shipped %d records; big intact = %v", len(got), len(got) > 1 && bytes.Equal(got[1], big))
	}
}

// TestScanRecordsTornChunk: a chunk cut mid-record (the network died, or
// the cap landed inside a frame) applies its whole-record prefix and
// reports the boundary so the cursor re-requests the torn tail — shipped
// streams resume exactly like crashed appends recover.
func TestScanRecordsTornChunk(t *testing.T) {
	payloads := segPayloads(8)
	path, bounds := writeSegment(t, payloads)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut at every byte offset: the scan must always stop at the last
	// record boundary at or before the cut, and never error.
	for cut := 0; cut <= len(whole); cut++ {
		n := 0
		consumed, records, err := ScanRecords(whole[:cut], func(p []byte) error {
			if !bytes.Equal(p, payloads[n]) {
				t.Fatalf("cut=%d: record %d mismatch", cut, n)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		wantBound := int64(0)
		wantRecords := 0
		for i, b := range bounds {
			if b <= int64(cut) {
				wantBound, wantRecords = b, i
			}
		}
		if consumed != wantBound || records != wantRecords {
			t.Fatalf("cut=%d: consumed %d records %d, want %d/%d", cut, consumed, records, wantBound, wantRecords)
		}
		// Resume from the reported boundary: the rest of the stream ships
		// cleanly.
		rest, _, err := ScanRecords(whole[consumed:], nil)
		if err != nil {
			t.Fatalf("cut=%d: resume: %v", cut, err)
		}
		if consumed+rest != int64(len(whole)) {
			t.Fatalf("cut=%d: resume consumed %d, want %d", cut, rest, int64(len(whole))-consumed)
		}
	}
}

// TestScanRecordsCorrupt: bit damage inside a complete record is an
// error — the stream cannot be trusted past it — never a silent skip.
func TestScanRecordsCorrupt(t *testing.T) {
	payloads := segPayloads(4)
	path, bounds := writeSegment(t, payloads)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the third record.
	bad := append([]byte(nil), whole...)
	bad[bounds[2]+headerSize] ^= 0x40
	consumed, records, err := ScanRecords(bad, nil)
	if err == nil {
		t.Fatal("corrupt record scanned without error")
	}
	if consumed != bounds[2] || records != 2 {
		t.Fatalf("corrupt scan consumed %d records %d, want %d/2", consumed, records, bounds[2])
	}

	// ReadChunk refuses to serve across the damage.
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadChunk(path, 0, 1<<20, int64(len(bad))); err == nil {
		t.Fatal("ReadChunk served a corrupt segment without error")
	}
	// ...but the records before it still ship.
	data, n, err := ReadChunk(path, 0, int(bounds[2]), int64(len(bad)))
	if err != nil || n != 2 || int64(len(data)) != bounds[2] {
		t.Fatalf("prefix before damage: data=%d records=%d err=%v", len(data), n, err)
	}
}

// TestReadChunkLimit: the flushed-size limit caps what ships — bytes past
// it (a writer's unflushed buffer on the live tail) are invisible, and an
// offset past the limit is the caller's bug.
func TestReadChunkLimit(t *testing.T) {
	payloads := segPayloads(6)
	path, bounds := writeSegment(t, payloads)

	limit := bounds[3]
	data, records, err := ReadChunk(path, 0, 1<<20, limit)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != limit || records != 3 {
		t.Fatalf("limited chunk: %d bytes %d records, want %d/3", len(data), records, limit)
	}
	if _, _, err := ReadChunk(path, limit+1, 1<<20, limit); err == nil {
		t.Fatal("offset past limit accepted")
	}
	// At the limit exactly: an empty chunk, not an error — the cursor is
	// simply caught up.
	data, records, err = ReadChunk(path, limit, 1<<20, limit)
	if err != nil || len(data) != 0 || records != 0 {
		t.Fatalf("caught-up chunk: %d bytes %d records err=%v", len(data), records, err)
	}
}

// TestFlushedSize: the shipping bound tracks appends through the buffer.
func TestFlushedSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000001")
	l, err := Create(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	// Buffered: the file may still be empty — FlushedSize forces it out.
	size, err := l.FlushedSize()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(headerSize + 5); size != want {
		t.Fatalf("FlushedSize = %d, want %d", size, want)
	}
	data, records, err := ReadChunk(path, 0, 1<<20, size)
	if err != nil || records != 1 || int64(len(data)) != size {
		t.Fatalf("live tail chunk: %d bytes %d records err=%v", len(data), records, err)
	}
}
