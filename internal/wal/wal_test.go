package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// replayAll collects every intact payload of a segment.
func replayAll(t *testing.T, path string) (payloads [][]byte, validLen int64, torn bool) {
	t.Helper()
	records, validLen, torn, err := Replay(path, func(p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if records != len(payloads) {
		t.Fatalf("Replay reported %d records, delivered %d", records, len(payloads))
	}
	return payloads, validLen, torn
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0")
	l, err := Create(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	// Empty payloads are legal records too.
	want = append(want, []byte{})
	if err := l.Append(nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, validLen, torn := replayAll(t, path)
	if torn {
		t.Fatal("clean log reported torn")
	}
	fi, _ := os.Stat(path)
	if validLen != fi.Size() {
		t.Fatalf("validLen = %d, file size = %d", validLen, fi.Size())
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// writeRecords builds a segment of n records and returns the record
// boundary offsets (offset i = end of record i).
func writeRecords(t *testing.T, path string, n int) []int64 {
	t.Helper()
	l, err := Create(path, true) // fsync keeps the file flushed per record
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int64
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("op-%03d", i))); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, fi.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return bounds
}

func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0")
	bounds := writeRecords(t, path, 10)

	// Truncating at any byte strictly inside record k+1 must surface
	// exactly records 0..k and flag the tail as torn.
	cases := []struct {
		size    int64
		records int
		torn    bool
	}{
		{bounds[9], 10, false},    // clean
		{bounds[4], 5, false},     // exact boundary: a crash between appends
		{bounds[4] + 1, 5, true},  // one header byte
		{bounds[4] + 8, 5, true},  // full header, no payload
		{bounds[4] + 10, 5, true}, // partial payload
		{bounds[0] - 1, 0, true},  // first record torn
		{0, 0, false},             // empty file
	}
	for _, tc := range cases {
		img := filepath.Join(dir, "img")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(img, data[:tc.size], 0o644); err != nil {
			t.Fatal(err)
		}
		got, validLen, torn := replayAll(t, img)
		if len(got) != tc.records || torn != tc.torn {
			t.Errorf("truncate@%d: %d records torn=%v, want %d torn=%v",
				tc.size, len(got), torn, tc.records, tc.torn)
		}
		if tc.records > 0 && validLen != bounds[tc.records-1] {
			t.Errorf("truncate@%d: validLen = %d, want %d", tc.size, validLen, bounds[tc.records-1])
		}
	}
}

func TestReplayCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal-0")
	bounds := writeRecords(t, path, 6)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of record 3: records 0..2 survive, the rest is
	// distrusted.
	data[bounds[2]+8] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, validLen, torn := replayAll(t, path)
	if len(got) != 3 || !torn {
		t.Fatalf("corrupt record: %d records torn=%v, want 3 torn=true", len(got), torn)
	}
	if validLen != bounds[2] {
		t.Fatalf("validLen = %d, want %d", validLen, bounds[2])
	}
}

func TestReplayAbsurdLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0")
	// A header whose length runs far past EOF must read as a torn tail,
	// not as an allocation.
	if err := os.WriteFile(path, []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, torn := replayAll(t, path)
	if len(got) != 0 || !torn {
		t.Fatalf("absurd length: %d records torn=%v, want 0 torn=true", len(got), torn)
	}
}

func TestOpenAppendContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0")
	l, err := Create(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = OpenAppend(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, torn := replayAll(t, path)
	if torn || len(got) != 2 || string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("reopened log replay = %q torn=%v", got, torn)
	}
}

func TestSnapshotAtomicity(t *testing.T) {
	dir := t.TempDir()
	// A failing writer must leave no snapshot and no temp litter.
	err := WriteSnapshot(dir, 1, func(w io.Writer) error {
		_, _ = w.Write([]byte("partial"))
		return fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("failing snapshot writer must error")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("failed snapshot left files: %v", entries)
	}

	// A successful write lands under the final name with the full content.
	if err := WriteSnapshot(dir, 1, func(w io.Writer) error {
		_, err := w.Write([]byte("full state"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(SnapshotPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "full state" {
		t.Fatalf("snapshot content = %q", data)
	}
}

func TestGenerationsAndRemoveBelow(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"snap-00000001", "snap-00000003", "wal-00000001", "wal-00000003", "snap-00000002.tmp", "other.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	snaps, logs, err := Generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0] != 1 || snaps[1] != 3 {
		t.Fatalf("snaps = %v", snaps)
	}
	if len(logs) != 2 || logs[0] != 1 || logs[1] != 3 {
		t.Fatalf("logs = %v", logs)
	}
	// Split thresholds: drop the old snapshot but retain its segment (the
	// shipping-primary configuration).
	if err := RemoveBelow(dir, 3, 1); err != nil {
		t.Fatal(err)
	}
	snaps, logs, err = Generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0] != 3 || len(logs) != 2 {
		t.Fatalf("after snapshot GC: snaps = %v, logs = %v", snaps, logs)
	}
	if err := RemoveBelow(dir, 3, 3); err != nil {
		t.Fatal(err)
	}
	snaps, logs, err = Generations(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0] != 3 || len(logs) != 1 || logs[0] != 3 {
		t.Fatalf("after GC: snaps = %v, logs = %v", snaps, logs)
	}
}
