#!/bin/sh
# Bench regression gate: run the fixed cfdbench workload at least twice,
# min-merge the runs per series (noise only ever inflates a timing, so
# the min across independent runs estimates the code's true cost), and
# compare against the checked-in BENCH_baseline.json. A failing
# comparison earns one more run before the verdict sticks — a shared
# runner can land an entire run in a slow window, which no per-series
# statistics can absorb; a genuine regression fails every attempt.
#
# Writes the markdown delta table to bench-diff.md and, under GitHub
# Actions, appends it to the job summary. Knobs (see Makefile):
# BENCH_WORKLOAD, BENCH_TOLERANCE, BENCH_FLOOR_NS, BENCH_MAX_RUNS.
set -eu

WORKLOAD=${BENCH_WORKLOAD:-"-quick -repeat 5 -only 9a,merge,e9"}
TOLERANCE=${BENCH_TOLERANCE:-0.30}
FLOOR_NS=${BENCH_FLOOR_NS:-100000}
MAX_RUNS=${BENCH_MAX_RUNS:-3}

# The delta table must reach the job summary on EVERY exit path — a
# config error, a diff crash, a regression — not just the happy one, so
# the append rides the EXIT trap instead of the tail of the script.
finish() {
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ] && [ -f bench-diff.md ]; then
        cat bench-diff.md >> "$GITHUB_STEP_SUMMARY"
    fi
    rm -rf "${BIN:-}"
}
trap finish EXIT

if [ ! -f BENCH_baseline.json ]; then
    echo "bench gate: BENCH_baseline.json missing — run 'make bench-baseline' and commit it" >&2
    exit 2
fi

# Real binaries, not `go run`: it flattens every child exit code to 1,
# which would make a missing-baseline config error (exit 2) look like a
# regression (exit 1) — and it recompiles on every loop iteration.
BIN=$(mktemp -d)
go build -o "$BIN/" ./cmd/cfdbench ./cmd/cfdbenchdiff

runs=""
n=0
status=1
while [ "$n" -lt "$MAX_RUNS" ]; do
    n=$((n + 1))
    # shellcheck disable=SC2086 # WORKLOAD is a flag list, splitting intended
    "$BIN/cfdbench" $WORKLOAD -json > "bench-run$n.json"
    runs="${runs:+$runs,}bench-run$n.json"
    if [ "$n" -lt 2 ]; then
        continue
    fi
    set +e
    "$BIN/cfdbenchdiff" -baseline BENCH_baseline.json -current "$runs" \
        -tolerance "$TOLERANCE" -floor "$FLOOR_NS" > bench-diff.md
    status=$?
    set -e
    if [ "$status" -eq 0 ]; then
        break
    fi
    if [ "$status" -ge 2 ]; then
        # Usage/IO error (missing or unparseable file), not a regression:
        # more bench runs cannot help.
        echo "bench gate: cfdbenchdiff failed (exit $status), aborting" >&2
        exit "$status"
    fi
    if [ "$n" -lt "$MAX_RUNS" ]; then
        echo "bench gate: regression after $n runs, adding another run" >&2
    fi
done

cat bench-diff.md
if [ "$status" -ne 0 ]; then
    echo "bench gate: baseline timings are hardware-relative — if this runner" >&2
    echo "class changed (or the slowdown is intentional), regenerate with" >&2
    echo "'make bench-baseline' on it and commit BENCH_baseline.json" >&2
fi
exit "$status"
