#!/bin/sh
# check_links.sh — the docs gate's link checker. Verifies that every
# relative link in the repo's tracked markdown files points at a real
# file, and that every #anchor resolves to a heading in its target
# (GitHub slug rules: lowercase, punctuation stripped, spaces to
# dashes). External (scheme://) and mailto links are skipped.
#
# Run from the repo root:  sh scripts/check_links.sh
set -eu

errs=$(mktemp)
trap 'rm -f "$errs"' EXIT

# slugs FILE — GitHub-style anchor slugs for every markdown heading.
slugs() {
    grep -E '^#{1,6} ' "$1" | sed -E 's/^#+ +//' \
        | tr '[:upper:]' '[:lower:]' \
        | sed -E 's/[^a-z0-9 _-]//g; s/ /-/g'
}

git ls-files '*.md' | while IFS= read -r f; do
    dir=$(dirname "$f")
    # Every inline-link target: the (...) part after a ](.
    grep -oE '\]\([^) ]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' \
        | while IFS= read -r link; do
        case $link in
        http://* | https://* | mailto:*) continue ;;
        esac
        path=${link%%#*}
        anchor=""
        case $link in
        *'#'*) anchor=${link#*#} ;;
        esac
        if [ -n "$path" ]; then
            target="$dir/$path"
        else
            target="$f" # bare in-page anchor: (#section)
        fi
        if [ ! -e "$target" ]; then
            echo "$f: broken link: ($link): no such file: $target" >>"$errs"
            continue
        fi
        if [ -n "$anchor" ]; then
            case $target in
            *.md)
                if ! slugs "$target" | grep -qx "$anchor"; then
                    echo "$f: broken anchor: ($link): no heading #$anchor in $target" >>"$errs"
                fi
                ;;
            esac
        fi
    done || true
done

if [ -s "$errs" ]; then
    cat "$errs" >&2
    echo "check_links: FAIL" >&2
    exit 1
fi
echo "check_links: all markdown links resolve"
