#!/bin/sh
# metrics_smoke.sh — end-to-end scrape check for cfdserve's observability
# surface: boot a durable primary, push batches through /apply, exercise
# /discover and /snapshot, then assert GET /metrics exposes the expected
# series (apply-stage latencies, WAL fsync timing, miner refresh, HTTP
# middleware) with enough distinct families for a dashboard. A follower
# is booted against the primary and must expose its replication-lag
# gauge. CFD_SOAK (default 1) scales the applied batches, so the nightly
# soak drives the same script harder.
#
# Usage: sh scripts/metrics_smoke.sh
set -eu

SOAK="${CFD_SOAK:-1}"
TMP="$(mktemp -d "${TMPDIR:-/tmp}/metrics-smoke.XXXXXX")"
PRIMARY_PID=""
FOLLOWER_PID=""

cleanup() {
    [ -n "$FOLLOWER_PID" ] && kill "$FOLLOWER_PID" 2>/dev/null
    [ -n "$PRIMARY_PID" ] && kill "$PRIMARY_PID" 2>/dev/null
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "metrics-smoke: FAIL: $1" >&2
    [ -f "$TMP/primary.log" ] && sed 's/^/  primary: /' "$TMP/primary.log" >&2
    [ -f "$TMP/follower.log" ] && sed 's/^/  follower: /' "$TMP/follower.log" >&2
    exit 1
}

# addr_of LOGFILE — poll the startup banner for the bound address
# ("... on 127.0.0.1:PORT ..."), which -http 127.0.0.1:0 makes dynamic.
addr_of() {
    i=0
    while [ "$i" -lt 100 ]; do
        addr="$(sed -n 's/.* on \([0-9.]*:[0-9]*\).*/\1/p' "$1" 2>/dev/null | head -n 1)"
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    return 1
}

cat > "$TMP/cust.csv" <<'EOF'
CC,AC,PN,NM,STR,CT,ZIP
01,908,1111111,Mike,Tree Ave.,MH,07974
01,212,2222222,Joe,Elm Str.,NYC,01202
EOF
cat > "$TMP/cfds.txt" <<'EOF'
[CC, AC, PN] -> [STR, CT, ZIP]
[CC=01, AC=908, PN] -> [STR, CT=MH, ZIP]
[CC=01, AC=212, PN] -> [STR, CT=NYC, ZIP]
EOF

echo "metrics-smoke: building cfdserve"
go build -o "$TMP/cfdserve" ./cmd/cfdserve

"$TMP/cfdserve" -data "$TMP/cust.csv" -cfds "$TMP/cfds.txt" \
    -http 127.0.0.1:0 -wal-dir "$TMP/pwal" -fsync -retain-segments 4 \
    > "$TMP/primary.log" 2>&1 &
PRIMARY_PID=$!
ADDR="$(addr_of "$TMP/primary.log")" || fail "primary did not report its address"
echo "metrics-smoke: primary on $ADDR"

# Drive the hot path: CFD_SOAK * 5 batches, each one insert + one
# healing update + one delete — every op kind, violations raised and
# retired, one WAL record and fsync per batch.
n=0
total=$((SOAK * 5))
while [ "$n" -lt "$total" ]; do
    key=$(curl -fsS -X POST "http://$ADDR/apply" -d '{"ops":[
        {"op":"insert","values":["01","908","1111111","Rick","Tree Ave.","NYC","07974"]}
    ]}' | sed -n 's/.*"keys":\[\([0-9]*\)\].*/\1/p')
    [ -n "$key" ] || fail "apply returned no inserted key"
    curl -fsS -X POST "http://$ADDR/apply" -d '{"ops":[
        {"op":"update","key":'"$key"',"attr":"CT","value":"MH"},
        {"op":"delete","key":'"$key"'}
    ]}' > /dev/null
    n=$((n + 1))
done
echo "metrics-smoke: applied $total batches"

# Exercise the miner and the snapshot path so their series have data.
curl -fsS "http://$ADDR/discover" > /dev/null
curl -fsS -X POST "http://$ADDR/snapshot" -d '' > /dev/null

curl -fsS "http://$ADDR/metrics" > "$TMP/metrics.txt"
for series in \
    'cfd_apply_ops_total{op="insert"}' \
    'cfd_apply_ops_total{op="update"}' \
    'cfd_apply_ops_total{op="delete"}' \
    cfd_apply_batches_total \
    cfd_apply_seconds_bucket \
    cfd_apply_validate_seconds_bucket \
    cfd_apply_wal_append_seconds_bucket \
    cfd_apply_shard_seconds_bucket \
    cfd_violations_added_total \
    cfd_violations_removed_total \
    cfd_wal_append_seconds_bucket \
    cfd_wal_fsync_seconds_bucket \
    cfd_wal_records_total \
    cfd_wal_append_bytes_total \
    cfd_wal_snapshots_total \
    cfd_wal_snapshot_seconds_bucket \
    cfd_miner_refresh_seconds_bucket \
    cfd_miner_candidates \
    cfd_miner_mined_cfds \
    cfd_tuples \
    cfd_violations \
    'cfdserve_http_requests_total{path="/apply"}' \
    cfdserve_http_request_seconds_bucket \
; do
    grep -qF "$series" "$TMP/metrics.txt" || fail "scrape missing series $series"
done

families="$(grep -c '^# TYPE ' "$TMP/metrics.txt")"
[ "$families" -ge 15 ] || fail "scrape has only $families metric families, want >= 15"
echo "metrics-smoke: primary scrape OK ($families families)"

# A hot standby must scrape too, with its replication-lag gauge live.
"$TMP/cfdserve" -cfds "$TMP/cfds.txt" -follow "http://$ADDR" \
    -http 127.0.0.1:0 -wal-dir "$TMP/fwal" \
    > "$TMP/follower.log" 2>&1 &
FOLLOWER_PID=$!
FADDR="$(addr_of "$TMP/follower.log")" || fail "follower did not report its address"

i=0
while :; do
    curl -fsS "http://$FADDR/metrics" > "$TMP/fmetrics.txt" 2>/dev/null || true
    if grep -q '^cfd_replica_lag_bytes' "$TMP/fmetrics.txt"; then
        break
    fi
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "follower scrape never showed cfd_replica_lag_bytes"
    sleep 0.1
done
grep -q '^cfd_replica_records_total' "$TMP/fmetrics.txt" \
    || fail "follower scrape missing cfd_replica_records_total"
echo "metrics-smoke: follower scrape OK"
echo "metrics-smoke: PASS"
